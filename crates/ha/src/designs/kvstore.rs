//! `kvstore` — a direct-mapped key-value store accelerator (interfering).
//!
//! An 8-slot direct-mapped table (slot = low key bits, full key stored as
//! tag). Transactions (payload `op[1:0], key[K-1:0], value[W-1:0]`,
//! response `found[0], value[W-1:0]`):
//!
//! | op | name | response                         | architectural update |
//! |----|------|----------------------------------|----------------------|
//! | 0  | PUT  | (prev-hit, previous value)       | slot ← (key, value)  |
//! | 1  | GET  | (hit, stored value or 0)         | none                 |
//! | 2  | DEL  | (hit, stored value or 0)         | slot invalidated     |
//!
//! Architectural state: all valid bits, tags and values.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, remove_init, TxnControl};
use gqed_ir::{Context, RegFile, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Value width in bits.
    pub value_width: u32,
    /// Key width in bits (≥ 3; the low 3 bits index the table).
    pub key_width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            value_width: 8,
            key_width: 4,
            latency: 2,
        }
    }
}

/// Opcodes.
pub const OP_PUT: u128 = 0;
/// Opcodes.
pub const OP_GET: u128 = 1;
/// Opcodes.
pub const OP_DEL: u128 = 2;

const DEPTH: usize = 8;

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "del-uses-live-bus",
            description: "DEL indexes the table with the live key bus at the commit cycle \
                          instead of the captured key (clears whatever the bus holds)",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 3,
        },
        BugInfo {
            id: "put-tag-skip-on-stall",
            description: "a PUT committed under back-pressure writes the value but not the \
                          tag, leaving a stale tag in the slot",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 3,
        },
        BugInfo {
            id: "uninit-valid",
            description: "the valid bits are not reset (slots may appear full after reset)",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "get-value-from-next-slot",
            description: "GET reports the hit correctly but returns the value of slot+1 \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 2,
        },
        BugInfo {
            id: "hang-on-del-miss",
            description: "a DEL whose key misses never completes",
            class: BugClass::HandshakeProtocol,
            expected: g(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let (wv, wk) = (params.value_width, params.key_width);
    assert!(wk >= 3, "key width must cover the 8-slot index");
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("kvstore");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let op = ctx.input("op", 2);
    let key = ctx.input("key", wk);
    let value = ctx.input("value", wv);
    ts.inputs.push(op);
    ts.inputs.push(key);
    ts.inputs.push(value);

    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let key_r = capture(&mut ctx, &mut ts, "key_r", ctl.accept, key);
    let val_r = capture(&mut ctx, &mut ts, "val_r", ctl.accept, value);

    // Table state.
    let vals = RegFile::new(&mut ctx, "vals", DEPTH, wv);
    let tags = RegFile::new(&mut ctx, "tags", DEPTH, wk);
    let valids = RegFile::new(&mut ctx, "valid", DEPTH, 1);

    let slot = ctx.extract(key_r, 2, 0);
    let cur_val = vals.read(&mut ctx, slot);
    let cur_tag = tags.read(&mut ctx, slot);
    let cur_valid = valids.read(&mut ctx, slot);

    let tag_match = ctx.eq(cur_tag, key_r);
    let hit = ctx.and(cur_valid, tag_match);

    let opc_put = ctx.constant(OP_PUT, 2);
    let opc_get = ctx.constant(OP_GET, 2);
    let opc_del = ctx.constant(OP_DEL, 2);
    let is_put = ctx.eq(op_r, opc_put);
    let is_get = ctx.eq(op_r, opc_get);
    let is_del = ctx.eq(op_r, opc_del);

    // Response.
    let zero_v = ctx.zero(wv);
    let hit_val = ctx.ite(hit, cur_val, zero_v);
    let read_val = if bug == Some("get-value-from-next-slot") {
        let one3 = ctx.constant(1, 3);
        let next_slot = ctx.add(slot, one3);
        let nv = vals.read(&mut ctx, next_slot);
        let wrong = ctx.ite(hit, nv, zero_v);
        ctx.ite(is_get, wrong, hit_val)
    } else {
        hit_val
    };
    let res_found = hit;
    let res_value = read_val;

    // Table writes at commit.
    let commit = ctl.done;
    let put_commit = ctx.and(commit, is_put);
    let del_commit = ctx.and(commit, is_del);

    // Values: written on PUT.
    for (word, next) in vals.write_next(&mut ctx, put_commit, slot, val_r) {
        let zero = ctx.zero(wv);
        ts.add_state(word, Some(zero), next);
    }
    // Tags: written on PUT (optionally skipped under back-pressure).
    let tag_we = if bug == Some("put-tag-skip-on-stall") {
        ctx.and(put_commit, ctl.out_ready)
    } else {
        put_commit
    };
    for (word, next) in tags.write_next(&mut ctx, tag_we, slot, key_r) {
        let zero = ctx.zero(wk);
        ts.add_state(word, Some(zero), next);
    }
    // Valid bits: set on PUT, cleared on DEL.
    let del_slot = if bug == Some("del-uses-live-bus") {
        ctx.extract(key, 2, 0) // live bus instead of the captured key
    } else {
        slot
    };
    {
        let tru = ctx.tru();
        let fls = ctx.fls();
        let set_nexts = valids.write_next(&mut ctx, put_commit, slot, tru);
        // Apply the DEL clear on top of the PUT set per word.
        for (i, (word, set_next)) in set_nexts.into_iter().enumerate() {
            let idx = ctx.constant(i as u128, 3);
            let del_here0 = ctx.eq(del_slot, idx);
            let del_here = ctx.and(del_commit, del_here0);
            let next = ctx.ite(del_here, fls, set_next);
            let zero = ctx.fls();
            ts.add_state(word, Some(zero), next);
        }
        if bug == Some("uninit-valid") {
            for i in 0..DEPTH {
                remove_init(&mut ts, valids.word(i));
            }
        }
    }

    let res_found_r = capture(&mut ctx, &mut ts, "res_found_r", ctl.done, res_found);
    let res_value_r = capture(&mut ctx, &mut ts, "res_value_r", ctl.done, res_value);

    if bug == Some("hang-on-del-miss") {
        let miss = ctx.not(hit);
        let h0 = ctx.and(ctl.busy, is_del);
        let hang = ctx.and(h0, miss);
        let tw = ctx.width(ctl.timer);
        let one_t = ctx.constant(1, tw);
        let orig = get_next(&ts, ctl.timer);
        let tn = ctx.ite(hang, one_t, orig);
        override_next(&mut ts, ctl.timer, tn);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("found".into(), res_found_r),
        ("value".into(), res_value_r),
    ];

    // Conventional assertion: at a GET commit that hits, the response
    // value must equal the stored value of the addressed slot.
    let conventional = {
        let get_commit = ctx.and(commit, is_get);
        let ok_path = ctx.and(get_commit, hit);
        let neq = ctx.ne(res_value, cur_val);
        let t = ctx.and(ok_path, neq);
        vec![gqed_ir::Bad {
            name: "conv.get_hit_returns_stored".into(),
            term: t,
        }]
    };

    // Architectural state: every table word and valid bit.
    let mut arch_state = Vec::new();
    arch_state.extend(valids.words().iter().copied());
    arch_state.extend(tags.words().iter().copied());
    arch_state.extend(vals.words().iter().copied());

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, key, value],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_found_r, res_value_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state,
        conventional,
        meta: DesignMeta {
            name: "kvstore",
            interfering: true,
            description: "direct-mapped key-value store with PUT/GET/DEL transactions",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn run_txn(sim: &mut Sim, d: &Design, op: u128, key: u128, value: u128) -> (u128, u128) {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], op);
        inp.insert(d.iface.in_payload[1], key);
        inp.insert(d.iface.in_payload[2], value);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let f = sim.peek(&inp, d.iface.out_payload[0]);
                let v = sim.peek(&inp, d.iface.out_payload[1]);
                sim.step(&inp);
                return (f, v);
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn put_get_del_lifecycle() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 5, 0), (0, 0)); // miss
        assert_eq!(run_txn(&mut sim, &d, OP_PUT, 5, 0x42), (0, 0)); // fresh put
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 5, 0), (1, 0x42)); // hit
        assert_eq!(run_txn(&mut sim, &d, OP_PUT, 5, 0x43), (1, 0x42)); // overwrite
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 5, 0), (1, 0x43));
        assert_eq!(run_txn(&mut sim, &d, OP_DEL, 5, 0), (1, 0x43));
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 5, 0), (0, 0)); // gone
    }

    #[test]
    fn direct_mapping_conflicts_evict() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        // Keys 2 and 10 share slot 2 (low 3 bits).
        assert_eq!(run_txn(&mut sim, &d, OP_PUT, 2, 0x11), (0, 0));
        assert_eq!(run_txn(&mut sim, &d, OP_PUT, 10, 0x22), (0, 0)); // tag differs: miss
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 2, 0), (0, 0)); // evicted
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 10, 0), (1, 0x22));
    }

    #[test]
    fn next_slot_bug_returns_wrong_value() {
        let d = build(&Params::default(), Some("get-value-from-next-slot"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let _ = run_txn(&mut sim, &d, OP_PUT, 3, 0x33);
        let _ = run_txn(&mut sim, &d, OP_PUT, 4, 0x44);
        // GET key 3 hits but returns slot 4's value.
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 3, 0), (1, 0x44));
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }

    #[test]
    fn arch_state_covers_table() {
        let d = build(&Params::default(), None);
        assert_eq!(d.arch_state.len(), 3 * DEPTH);
    }
}
