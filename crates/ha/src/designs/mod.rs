//! The accelerator designs under verification.
//!
//! Non-interfering (A-QED applies): [`vecadd`], [`alu`], [`relu`],
//! [`matvec`], [`bitflip`]. Interfering (G-QED required): [`accum`],
//! [`crc32`], [`kvstore`], [`dma`], [`histogram`], [`movavg`].

pub mod accum;
pub mod alu;
pub mod bitflip;
pub mod crc32;
pub mod dma;
pub mod fir;
pub mod histogram;
pub mod kvstore;
pub mod matvec;
pub mod movavg;
pub mod pipeadd;
pub mod relu;
pub mod vecadd;
