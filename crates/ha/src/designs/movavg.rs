//! `movavg` — a windowed moving-sum filter (interfering).
//!
//! A shift-register window of the last `TAPS` samples. A FEED(x)
//! transaction shifts `x` in and responds with the sum of the window
//! (including `x`). The response depends on the previous `TAPS - 1`
//! transactions — bounded interference.
//!
//! Payload: `data[W-1:0]`. Response: `sum[W+2-1:0]`.
//!
//! Architectural state: the window registers.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, remove_init, TxnControl};
use gqed_ir::{Context, TermId, TransitionSystem};

/// Number of window taps.
pub const TAPS: usize = 4;

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Sample width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 8,
            latency: 1,
        }
    }
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "shift-during-stall",
            description: "the window shifts once per cycle while the response is stalled \
                          by back-pressure (samples drop out of the window)",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "uninit-window",
            description: "the window registers are not reset",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "double-shift-on-early-valid",
            description: "a request offered (not accepted) while busy shifts the window \
                          a second time",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "sum-truncated",
            description: "the window sum is computed at sample width, dropping carries \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 2,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let sw = w + 2; // log2(TAPS) headroom
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("movavg");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let data = ctx.input("data", w);
    ts.inputs.push(data);
    let data_r = capture(&mut ctx, &mut ts, "data_r", ctl.accept, data);

    // Window shift registers: win[0] is the newest *committed* sample.
    let win: Vec<TermId> = (0..TAPS - 1)
        .map(|i| ctx.state(format!("win[{i}]"), w))
        .collect();

    // Sum of the window including the in-flight sample.
    let full_sum = {
        let mut acc = ctx.zext(data_r, sw);
        for &t in &win {
            let tz = ctx.zext(t, sw);
            acc = ctx.add(acc, tz);
        }
        acc
    };
    let res_val = if bug == Some("sum-truncated") {
        let mut acc = data_r;
        for &t in &win {
            acc = ctx.add(acc, t);
        }
        ctx.zext(acc, sw)
    } else {
        full_sum
    };

    // Shift condition(s).
    let commit = ctl.done;
    let spurious = match bug {
        Some("shift-during-stall") => {
            let not_rdy = ctx.not(ctl.out_ready);
            ctx.and(ctl.pending, not_rdy)
        }
        Some("double-shift-on-early-valid") => {
            let not_ready = ctx.not(ctl.in_ready);
            ctx.and(ctl.in_valid, not_ready)
        }
        _ => ctx.fls(),
    };
    let shift = ctx.or(commit, spurious);
    let zero = ctx.zero(w);
    for i in 0..TAPS - 1 {
        let incoming = if i == 0 { data_r } else { win[i - 1] };
        let next = ctx.ite(shift, incoming, win[i]);
        ts.add_state(win[i], Some(zero), next);
        if bug == Some("uninit-window") {
            remove_init(&mut ts, win[i]);
        }
    }

    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("sum".into(), res_r),
    ];

    // Conventional assertion: the committed response equals the wide sum.
    let conventional = {
        let neq = ctx.ne(res_val, full_sum);
        let t = ctx.and(ctl.done, neq);
        vec![gqed_ir::Bad {
            name: "conv.sum_is_wide".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![data],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: win,
        conventional,
        meta: DesignMeta {
            name: "movavg",
            interfering: true,
            description: "4-tap moving-sum filter over a FEED stream",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn feed(sim: &mut Sim, d: &Design, x: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], x);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn window_sums_last_four() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(feed(&mut sim, &d, 10), 10);
        assert_eq!(feed(&mut sim, &d, 20), 30);
        assert_eq!(feed(&mut sim, &d, 30), 60);
        assert_eq!(feed(&mut sim, &d, 40), 100);
        assert_eq!(feed(&mut sim, &d, 50), 140); // 10 drops out
    }

    #[test]
    fn wide_sum_keeps_carries() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        for _ in 0..3 {
            let _ = feed(&mut sim, &d, 255);
        }
        assert_eq!(feed(&mut sim, &d, 255), 4 * 255);
    }

    #[test]
    fn truncation_bug_drops_carries() {
        let d = build(&Params::default(), Some("sum-truncated"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        for _ in 0..3 {
            let _ = feed(&mut sim, &d, 255);
        }
        assert_eq!(feed(&mut sim, &d, 255), (4 * 255) % 256);
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
