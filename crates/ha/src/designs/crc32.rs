//! `crc32` — a running CRC engine (interfering).
//!
//! Keeps a CRC register across transactions (the paper's "result depends on
//! the input's context" in its purest form). Transactions (payload
//! `op[1:0], data[7:0]`, response `crc[W-1:0]`):
//!
//! | op | name | response               | architectural update        |
//! |----|------|------------------------|-----------------------------|
//! | 0  | INIT | the init constant      | `crc ← INIT_VAL`            |
//! | 1  | FEED | updated CRC            | `crc ← crc_step(crc, data)` |
//! | 2  | READ | current CRC            | none                        |
//!
//! The CRC step processes all 8 data bits combinationally (unrolled
//! bitwise LFSR with the CRC-16/CCITT polynomial truncated to `W` bits).
//!
//! Architectural state: the CRC register.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, remove_init, TxnControl};
use gqed_ir::{Context, TermId, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// CRC register width.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 16,
            latency: 2,
        }
    }
}

/// Opcodes.
pub const OP_INIT: u128 = 0;
/// Opcodes.
pub const OP_FEED: u128 = 1;
/// Opcodes.
pub const OP_READ: u128 = 2;

/// Reset value loaded by INIT.
pub const INIT_VAL: u128 = 0xffff;
/// CRC-16/CCITT polynomial (x^16 + x^12 + x^5 + 1), truncated to width.
pub const POLY: u128 = 0x1021;

/// Reference software model of the 8-bit CRC step (used by tests and the
/// conventional assertions' documentation).
pub fn crc_step_model(crc: u128, byte: u128, width: u32) -> u128 {
    let m = if width >= 128 {
        u128::MAX
    } else {
        (1 << width) - 1
    };
    let mut crc = crc & m;
    for i in (0..8).rev() {
        let inbit = byte >> i & 1;
        let top = crc >> (width - 1) & 1;
        let fb = top ^ inbit;
        crc = (crc << 1) & m;
        if fb != 0 {
            crc ^= POLY & m;
        }
    }
    crc
}

fn crc_step_terms(ctx: &mut Context, crc: TermId, byte: TermId, width: u32) -> TermId {
    let mut cur = crc;
    let poly = ctx.constant(POLY, width);
    let one = ctx.constant(1, width);
    for i in (0..8).rev() {
        let inbit = ctx.bit(byte, i);
        let top = ctx.bit(cur, width - 1);
        let fb = ctx.xor(top, inbit);
        let shifted = ctx.shl(cur, one);
        let xored = ctx.xor(shifted, poly);
        cur = ctx.ite(fb, xored, shifted);
    }
    cur
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "stall-shift-corrupt",
            description: "the CRC register shifts left once per cycle while the response \
                          is stalled by back-pressure",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "idle-phase-leak",
            description: "a free-running phase flip-flop XORs into the FEED update, making \
                          the CRC depend on idle time between transactions",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "uninit-crc",
            description: "the CRC register is not reset",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "init-partial",
            description: "INIT loads 0xff00 instead of 0xffff (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "feed-drop-on-stall",
            description: "the architectural CRC update of a FEED is dropped when the \
                          response is stalled at the commit cycle",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "read-hang-on-zero",
            description: "a READ never completes while the CRC register is zero",
            class: BugClass::HandshakeProtocol,
            expected: g(false),
            min_transactions: 2,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    assert!(w >= 9, "crc width must exceed the byte width");
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("crc32");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let op = ctx.input("op", 2);
    let data = ctx.input("data", 8);
    ts.inputs.push(op);
    ts.inputs.push(data);

    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let data_r = capture(&mut ctx, &mut ts, "data_r", ctl.accept, data);

    // Architectural state.
    let crc = ctx.state("crc", w);
    // Free-running phase bit (harmless unless the leak bug is injected).
    let phase = ctx.state("phase", 1);

    let fed = {
        let stepped = crc_step_terms(&mut ctx, crc, data_r, w);
        if bug == Some("idle-phase-leak") {
            let pz = ctx.zext(phase, w);
            ctx.xor(stepped, pz)
        } else {
            stepped
        }
    };
    let init_const = if bug == Some("init-partial") {
        ctx.constant(0xff00, w)
    } else {
        ctx.constant(INIT_VAL, w)
    };

    let opc_init = ctx.constant(OP_INIT, 2);
    let opc_feed = ctx.constant(OP_FEED, 2);
    let is_init = ctx.eq(op_r, opc_init);
    let is_feed = ctx.eq(op_r, opc_feed);

    let res0 = ctx.ite(is_feed, fed, crc);
    let res_val = ctx.ite(is_init, init_const, res0);
    let upd0 = ctx.ite(is_feed, fed, crc);
    let crc_upd = ctx.ite(is_init, init_const, upd0);

    // Commit (with optional drop / stall-corruption bugs).
    let commit = if bug == Some("feed-drop-on-stall") {
        // The architectural update only lands when out_ready is high at
        // the commit cycle.
        ctx.and(ctl.done, ctl.out_ready)
    } else {
        ctl.done
    };
    let crc_held = if bug == Some("stall-shift-corrupt") {
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(ctl.pending, not_rdy);
        let one = ctx.constant(1, w);
        let shifted = ctx.shl(crc, one);
        ctx.ite(stalled, shifted, crc)
    } else {
        crc
    };
    let crc_next = ctx.ite(commit, crc_upd, crc_held);
    let zero = ctx.zero(w);
    ts.add_state(crc, Some(zero), crc_next);
    if bug == Some("uninit-crc") {
        remove_init(&mut ts, crc);
    }
    let phase_next = ctx.not(phase);
    let fls = ctx.fls();
    ts.add_state(phase, Some(fls), phase_next);

    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    if bug == Some("read-hang-on-zero") {
        let opc_read = ctx.constant(OP_READ, 2);
        let is_read = ctx.eq(op_r, opc_read);
        let crc_z = ctx.eq(crc, zero);
        let h0 = ctx.and(ctl.busy, is_read);
        let hang = ctx.and(h0, crc_z);
        let tw = ctx.width(ctl.timer);
        let one_t = ctx.constant(1, tw);
        let orig = get_next(&ts, ctl.timer);
        let tn = ctx.ite(hang, one_t, orig);
        override_next(&mut ts, ctl.timer, tn);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("res".into(), res_r),
        ("crc".into(), crc),
    ];

    // Conventional assertions: INIT and READ paths only.
    let conventional = {
        let mut bads = Vec::new();
        let init_expected = ctx.constant(INIT_VAL, w);
        let init_done = ctx.and(ctl.done, is_init);
        let bad_val = ctx.ne(crc_upd, init_expected);
        let t = ctx.and(init_done, bad_val);
        bads.push(gqed_ir::Bad {
            name: "conv.init_loads_const".into(),
            term: t,
        });
        let opc_read = ctx.constant(OP_READ, 2);
        let is_read = ctx.eq(op_r, opc_read);
        let read_done = ctx.and(ctl.done, is_read);
        let neq = ctx.ne(res_val, crc);
        let t2 = ctx.and(read_done, neq);
        bads.push(gqed_ir::Bad {
            name: "conv.read_returns_crc".into(),
            term: t2,
        });
        bads
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, data],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![crc],
        conventional,
        meta: DesignMeta {
            name: "crc32",
            interfering: true,
            description: "running CRC engine with INIT/FEED/READ transactions",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn run_txn(sim: &mut Sim, d: &Design, op: u128, data: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], op);
        inp.insert(d.iface.in_payload[1], data);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn matches_software_model() {
        let p = Params::default();
        let d = build(&p, None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_INIT, 0), INIT_VAL);
        let mut model = INIT_VAL;
        for byte in [0x31u128, 0x32, 0x33, 0xff, 0x00] {
            model = crc_step_model(model, byte, p.width);
            assert_eq!(run_txn(&mut sim, &d, OP_FEED, byte), model);
        }
        assert_eq!(run_txn(&mut sim, &d, OP_READ, 0), model);
    }

    #[test]
    fn known_answer_crc16_ccitt() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        let p = Params::default();
        let mut crc = 0xffffu128;
        for b in b"123456789" {
            crc = crc_step_model(crc, *b as u128, p.width);
        }
        assert_eq!(crc, 0x29b1);
    }

    #[test]
    fn init_partial_bug_loads_wrong_constant() {
        let d = build(&Params::default(), Some("init-partial"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_INIT, 0), 0xff00);
    }

    #[test]
    fn feed_drop_on_stall_changes_state() {
        let p = Params::default();
        let d = build(&p, Some("feed-drop-on-stall"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let _ = run_txn(&mut sim, &d, OP_INIT, 0);
        // Feed with back-pressure held low through the commit cycle so the
        // architectural update is dropped.
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 0u128);
        inp.insert(d.iface.in_payload[0], OP_FEED);
        inp.insert(d.iface.in_payload[1], 0x55u128);
        sim.step(&inp); // accept
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..6 {
            sim.step(&inp); // compute + wait, out_ready low
        }
        inp.insert(d.iface.out_ready, 1);
        sim.step(&inp); // deliver
                        // READ exposes the inconsistency: crc was never updated.
        let got = run_txn(&mut sim, &d, OP_READ, 0);
        assert_eq!(got, INIT_VAL, "update should have been dropped (bug)");
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
