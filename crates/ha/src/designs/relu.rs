//! `relu` — a signed activation unit (non-interfering).
//!
//! Response: `max(0, x)` over a signed `W`-bit sample. A pure function of
//! the payload.
//!
//! Payload: `x[W-1:0]` (two's complement). Response: `y[W-1:0]`.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, TxnControl};
use gqed_ir::{Context, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Sample width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 8,
            latency: 1,
        }
    }
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let both = |conv| Detectors {
        gqed: true,
        aqed: true,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "stall-sign-flip",
            description: "the held response flips its sign bit every stalled cycle",
            class: BugClass::ContextDependent,
            expected: both(true), // the sign assertion also sees it
            min_transactions: 1,
        },
        BugInfo {
            id: "int-min-passthrough",
            description: "the most negative input passes through unclamped \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "double-deliver",
            description: "every second response stays valid for one extra beat after \
                          delivery (a duplicated response with no matching request)",
            class: BugClass::HandshakeProtocol,
            expected: both(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("relu");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let x = ctx.input("x", w);
    ts.inputs.push(x);
    let x_r = capture(&mut ctx, &mut ts, "x_r", ctl.accept, x);

    let zero = ctx.zero(w);
    let neg = ctx.slt(x_r, zero);
    let clamped = ctx.ite(neg, zero, x_r);
    let res_val = if bug == Some("int-min-passthrough") {
        // INT_MIN (only the sign bit set) leaks through.
        let int_min = ctx.constant(1u128 << (w - 1), w);
        let is_min = ctx.eq(x_r, int_min);
        ctx.ite(is_min, x_r, clamped)
    } else {
        clamped
    };

    let res_r = if bug == Some("stall-sign-flip") {
        // Build the corrupted hold path by hand: on done capture, while
        // stalled flip the sign bit each cycle.
        let reg = ctx.state("res_r", w);
        let sign_mask = ctx.constant(1u128 << (w - 1), w);
        let flipped = ctx.xor(reg, sign_mask);
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(ctl.pending, not_rdy);
        let held = ctx.ite(stalled, flipped, reg);
        let next = ctx.ite(ctl.done, res_val, held);
        ts.add_state(reg, Some(zero), next);
        reg
    } else {
        capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val)
    };

    // double-deliver: pending clears only every second completion.
    if bug == Some("double-deliver") {
        let toggle = ctx.state("dd_toggle", 1);
        let toggled = ctx.not(toggle);
        let tnext = ctx.ite(ctl.complete, toggled, toggle);
        let fls = ctx.fls();
        ts.add_state(toggle, Some(fls), tnext);
        // pending: cleared at complete only when toggle is 1.
        let clear = ctx.and(ctl.complete, toggle);
        let tru = ctx.tru();
        let p0 = ctx.ite(clear, fls, ctl.pending);
        let pnext = ctx.ite(ctl.done, tru, p0);
        crate::skeleton::override_next(&mut ts, ctl.pending, pnext);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("y".into(), res_r),
    ];

    // Conventional assertion: a delivered response is never negative.
    let conventional = {
        let sign = ctx.bit(res_r, w - 1);
        let t = ctx.and(ctl.out_valid, sign);
        vec![gqed_ir::Bad {
            name: "conv.output_nonnegative".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![x],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![],
        conventional,
        meta: DesignMeta {
            name: "relu",
            interfering: false,
            description: "signed ReLU activation unit",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn relu(sim: &mut Sim, d: &Design, x: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], x);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn clamps_negative_passes_positive() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(relu(&mut sim, &d, 5), 5);
        assert_eq!(relu(&mut sim, &d, 0), 0);
        assert_eq!(relu(&mut sim, &d, 0xff), 0); // -1
        assert_eq!(relu(&mut sim, &d, 0x80), 0); // -128
        assert_eq!(relu(&mut sim, &d, 0x7f), 0x7f);
    }

    #[test]
    fn int_min_bug_leaks_sign() {
        let d = build(&Params::default(), Some("int-min-passthrough"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(relu(&mut sim, &d, 0x80), 0x80);
        assert_eq!(relu(&mut sim, &d, 0x81), 0); // other negatives clamp
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
