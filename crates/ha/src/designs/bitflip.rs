//! `bitflip` — a single-bit stream complementer (non-interfering).
//!
//! Response: the bitwise complement `!x` of a `W`-bit sample. A pure
//! function of the payload, and at the default width of 1 the smallest
//! design in the catalogue. That makes it the seed for the unbounded
//! proof engines: its G-QED self-consistency properties are *not*
//! k-inductive at small depth (k-induction returns `Unknown`), but the
//! wrapped model is small enough that IC3/PDR discovers the needed
//! strengthening invariant in well under a second — the portfolio's
//! canonical PDR win, exercised by the campaign smoke tests and CI.
//!
//! Payload: `x[W-1:0]`. Response: `y = !x`.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, TxnControl};
use gqed_ir::{Context, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Sample width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 1,
            latency: 1,
        }
    }
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    vec![
        BugInfo {
            id: "stall-flip",
            description: "the held response re-complements itself every stalled cycle",
            class: BugClass::ContextDependent,
            expected: Detectors {
                gqed: true,
                aqed: true,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "identity-passthrough",
            description: "the input passes through uncomplemented \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "double-deliver",
            description: "every second response stays valid for one extra beat after \
                          delivery (a duplicated response with no matching request)",
            class: BugClass::HandshakeProtocol,
            expected: Detectors {
                gqed: true,
                aqed: true,
                conventional: false,
            },
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("bitflip");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let x = ctx.input("x", w);
    ts.inputs.push(x);
    let x_r = capture(&mut ctx, &mut ts, "x_r", ctl.accept, x);

    // The complement is computed in the accept cycle and held alongside
    // the payload register (`out_valid` only rises once the latency
    // timer runs out, so the early capture is invisible at the
    // interface). The single-cycle `res_r == !x_r` relation keeps the
    // design's strengthening invariant shallow — this is the catalogue's
    // canonical IC3/PDR win, and it must stay cheap to prove.
    let flipped = ctx.not(x);
    let res_val = if bug == Some("identity-passthrough") {
        x
    } else {
        flipped
    };

    let res_r = if bug == Some("stall-flip") {
        // Corrupted hold path: capture at accept, but while the response
        // waits for `out_ready` it re-complements itself every cycle.
        let reg = ctx.state("res_r", w);
        let reflipped = ctx.not(reg);
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(ctl.pending, not_rdy);
        let held = ctx.ite(stalled, reflipped, reg);
        let next = ctx.ite(ctl.accept, res_val, held);
        let zero = ctx.zero(w);
        ts.add_state(reg, Some(zero), next);
        reg
    } else {
        capture(&mut ctx, &mut ts, "res_r", ctl.accept, res_val)
    };

    // double-deliver: pending clears only every second completion.
    if bug == Some("double-deliver") {
        let toggle = ctx.state("dd_toggle", 1);
        let toggled = ctx.not(toggle);
        let tnext = ctx.ite(ctl.complete, toggled, toggle);
        let fls = ctx.fls();
        ts.add_state(toggle, Some(fls), tnext);
        // pending: cleared at complete only when toggle is 1.
        let clear = ctx.and(ctl.complete, toggle);
        let tru = ctx.tru();
        let p0 = ctx.ite(clear, fls, ctl.pending);
        let pnext = ctx.ite(ctl.done, tru, p0);
        crate::skeleton::override_next(&mut ts, ctl.pending, pnext);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("y".into(), res_r),
    ];

    // Conventional assertion: a presented response is never equal to the
    // captured input — a complementer must always flip. The payload
    // register is stable while the response waits (a new request is only
    // accepted once the previous response is delivered), so the
    // comparison is well-defined whenever `out_valid` holds.
    let conventional = {
        let same = ctx.eq(res_r, x_r);
        let t = ctx.and(ctl.out_valid, same);
        vec![gqed_ir::Bad {
            name: "conv.output_complements_input".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![x],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![],
        conventional,
        meta: DesignMeta {
            name: "bitflip",
            interfering: false,
            description: "single-bit stream complementer",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn flip(sim: &mut Sim, d: &Design, x: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], x);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn complements_every_sample() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(flip(&mut sim, &d, 0), 1);
        assert_eq!(flip(&mut sim, &d, 1), 0);
    }

    #[test]
    fn wider_builds_complement_bitwise() {
        let d = build(
            &Params {
                width: 4,
                latency: 1,
            },
            None,
        );
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(flip(&mut sim, &d, 0b1010), 0b0101);
        assert_eq!(flip(&mut sim, &d, 0b1111), 0b0000);
    }

    #[test]
    fn identity_bug_passes_input_through() {
        let d = build(&Params::default(), Some("identity-passthrough"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(flip(&mut sim, &d, 1), 1);
        assert_eq!(flip(&mut sim, &d, 0), 0);
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
