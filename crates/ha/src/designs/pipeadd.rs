//! `pipeadd` — a two-stage pipelined adder (non-interfering,
//! multi-outstanding).
//!
//! Unlike the single-outstanding designs built on the [`TxnControl`]
//! skeleton, `pipeadd` keeps up to **two transactions in flight** with an
//! initiation interval of one: stage 1 computes the low half of the sum,
//! stage 2 completes it and presents the response. Responses are in order
//! (it is a linear pipeline), so the QED wrapper's sequence bookkeeping
//! applies unchanged — this design exercises the wrapper beyond the
//! one-at-a-time pattern.
//!
//! Payload: `a[W-1:0], b[W-1:0]`. Response: `sum[W:0]`.
//!
//! [`TxnControl`]: crate::skeleton::TxnControl

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use gqed_ir::{Context, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Operand width in bits.
    pub width: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params { width: 8 }
    }
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let both = |conv| Detectors {
        gqed: true,
        aqed: true,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "stall-collapses-bubble",
            description: "during a back-pressure stall, stage 1 keeps advancing into the \
                          occupied stage 2, overwriting an undelivered transaction",
            class: BugClass::ContextDependent,
            expected: both(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "stage1-recaptures-bus",
            description: "a stalled stage 1 re-samples the live operand bus every cycle",
            class: BugClass::ContextDependent,
            expected: both(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "carry-between-stages-lost",
            description: "the inter-stage carry bit is dropped \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "uninit-stage2",
            description: "the stage-2 valid bit is not reset (a ghost response after reset)",
            class: BugClass::Uninitialized,
            expected: both(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let half = w / 2;
    assert!(
        w >= 4 && w.is_multiple_of(2),
        "width must be even and at least 4"
    );
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("pipeadd");

    let in_valid = ctx.input("in_valid", 1);
    let out_ready = ctx.input("out_ready", 1);
    let a = ctx.input("a", w);
    let b = ctx.input("b", w);
    ts.inputs = vec![in_valid, out_ready, a, b];

    // Stage registers.
    let v1 = ctx.state("v1", 1);
    let a1 = ctx.state("a1", w); // operands held in stage 1
    let b1 = ctx.state("b1", w);
    let lo1 = ctx.state("lo1", half + 1); // low-half sum + carry
    let v2 = ctx.state("v2", 1);
    let res2 = ctx.state("res2", w + 1); // completed sum

    // Flow control: stage 2 drains when empty or delivered; stage 1
    // advances into a draining stage 2; a new request enters when stage 1
    // is empty or advancing.
    let out_valid = v2;
    let complete = ctx.and(out_valid, out_ready);
    let nv2 = ctx.not(v2);
    let advance2 = ctx.or(nv2, complete);
    let advance2 = if bug == Some("stall-collapses-bubble") {
        // Stage 1 always advances, clobbering a stalled stage 2.
        ctx.tru()
    } else {
        advance2
    };
    let nv1 = ctx.not(v1);
    let in_ready = ctx.or(nv1, advance2);
    let accept = ctx.and(in_valid, in_ready);

    // Stage 1 datapath: low half + carry.
    let alo = ctx.extract(a, half - 1, 0);
    let blo = ctx.extract(b, half - 1, 0);
    let aloz = ctx.zext(alo, half + 1);
    let bloz = ctx.zext(blo, half + 1);
    let losum = ctx.add(aloz, bloz);

    // Stage 1 registers.
    let tru = ctx.tru();
    let fls = ctx.fls();
    let v1_drain = ctx.ite(advance2, fls, v1);
    let v1_next = ctx.ite(accept, tru, v1_drain);
    let recapture = bug == Some("stage1-recaptures-bus");
    let cap1 = if recapture {
        // Stalled stage 1 keeps sampling the bus.
        let stuck = ctx.not(advance2);
        let s0 = ctx.and(v1, stuck);
        ctx.or(accept, s0)
    } else {
        accept
    };
    let a1_next = ctx.ite(cap1, a, a1);
    let b1_next = ctx.ite(cap1, b, b1);
    let lo1_next = ctx.ite(cap1, losum, lo1);
    let zw = ctx.zero(w);
    let zh = ctx.zero(half + 1);
    ts.add_state(v1, Some(fls), v1_next);
    ts.add_state(a1, Some(zw), a1_next);
    ts.add_state(b1, Some(zw), b1_next);
    ts.add_state(lo1, Some(zh), lo1_next);

    // Stage 2 datapath: high half + inter-stage carry.
    let ahi = ctx.extract(a1, w - 1, half);
    let bhi = ctx.extract(b1, w - 1, half);
    let ahiz = ctx.zext(ahi, half + 1);
    let bhiz = ctx.zext(bhi, half + 1);
    let carry = ctx.extract(lo1, half, half);
    let hisum0 = ctx.add(ahiz, bhiz);
    let hisum = if bug == Some("carry-between-stages-lost") {
        hisum0
    } else {
        let cz = ctx.zext(carry, half + 1);
        ctx.add(hisum0, cz)
    };
    let lobits = ctx.extract(lo1, half - 1, 0);
    let full = ctx.concat(hisum, lobits); // (half+1) + half = w + 1 bits

    // Stage 2 registers.
    let enter2 = ctx.and(v1, advance2);
    let v2_drain = ctx.ite(complete, fls, v2);
    let v2_next = ctx.ite(enter2, tru, v2_drain);
    let res2_next = ctx.ite(enter2, full, res2);
    let zr = ctx.zero(w + 1);
    ts.add_state(v2, Some(fls), v2_next);
    ts.add_state(res2, Some(zr), res2_next);
    if bug == Some("uninit-stage2") {
        crate::skeleton::remove_init(&mut ts, v2);
    }

    ts.outputs = vec![
        ("in_ready".into(), in_ready),
        ("out_valid".into(), out_valid),
        ("sum".into(), res2),
    ];

    // Conventional assertion: the value entering stage 2 equals the full
    // reference sum of the stage-1 operands.
    let conventional = {
        let az = ctx.zext(a1, w + 1);
        let bz = ctx.zext(b1, w + 1);
        let reference = ctx.add(az, bz);
        let neq = ctx.ne(full, reference);
        let t = ctx.and(enter2, neq);
        vec![gqed_ir::Bad {
            name: "conv.stage_sum_correct".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid,
        in_ready,
        in_payload: vec![a, b],
        out_valid,
        out_ready,
        out_payload: vec![res2],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![],
        conventional,
        meta: DesignMeta {
            name: "pipeadd",
            interfering: false,
            description: "two-stage pipelined adder (two transactions in flight)",
            latency: 2,
            recommended_bound: 7,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;

    #[test]
    fn adds_correctly_under_various_stalls() {
        for stall in [0u32, 1, 4] {
            let d = build(&Params::default(), None);
            let mut drv = Driver::new(&d).with_stall(stall);
            for (a, b) in [(3u128, 4u128), (200, 100), (255, 255), (0, 0)] {
                assert_eq!(drv.txn(&[a, b]).unwrap()[0], a + b, "stall {stall}");
            }
        }
    }

    #[test]
    fn pipeline_keeps_two_in_flight() {
        // With continuous input and a responsive sink, the pipeline
        // sustains ~1 transaction per 1-2 cycles — check it is faster
        // than a single-outstanding design would be (≥3 cycles each).
        let d = build(&Params::default(), None);
        let mut drv = Driver::new(&d);
        let start = drv.cycle();
        for i in 0..8u128 {
            let _ = drv.txn(&[i, 1]).unwrap();
        }
        let elapsed = drv.cycle() - start;
        assert!(elapsed <= 8 * 4, "pipeline too slow: {elapsed} cycles");
    }

    #[test]
    fn carry_bug_breaks_half_boundary() {
        let d = build(&Params::default(), Some("carry-between-stages-lost"));
        let mut drv = Driver::new(&d);
        assert_eq!(drv.txn(&[0x0f, 0x01]).unwrap()[0], 0x00); // carry lost
        assert_eq!(drv.txn(&[0x10, 0x01]).unwrap()[0], 0x11); // no carry: fine
    }

    #[test]
    fn bubble_collapse_bug_overwrites_under_stall() {
        let d = build(&Params::default(), Some("stall-collapses-bubble"));
        let mut drv = Driver::new(&d).with_stall(4);
        // First txn computes 3 + 4; while its response is stalled the
        // follow-up txn may clobber it. Feed a second one back-to-back by
        // issuing transactions with stall: the driver serializes, so use
        // the clean result to detect divergence across stalls instead.
        let r1 = drv.txn(&[3, 4]).unwrap()[0];
        let clean = build(&Params::default(), None);
        let mut cd = Driver::new(&clean).with_stall(4);
        let c1 = cd.txn(&[3, 4]).unwrap()[0];
        assert_eq!(r1, c1, "single transactions still work");
        // The divergence needs two in-flight txns with a stalled sink —
        // exactly what the QED wrapper's free schedules construct; the
        // detection test lives in the integration suite.
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
