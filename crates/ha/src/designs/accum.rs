//! `accum` — a multiply-free accumulate engine (interfering).
//!
//! Transactions (payload `op[1:0], data[W-1:0]`, response `res[W-1:0]`):
//!
//! | op | name | response            | architectural update |
//! |----|------|---------------------|----------------------|
//! | 0  | ACC  | `acc + data`        | `acc ← acc + data`   |
//! | 1  | CLR  | `0`                 | `acc ← 0`            |
//! | 2  | GET  | `acc`               | none                 |
//! | 3  | GET  | (alias of GET)      | none                 |
//!
//! The response to ACC/GET depends on every earlier transaction — the
//! canonical *interfering* accelerator for which plain A-QED raises false
//! alarms (two equal GETs legitimately return different values).
//!
//! Architectural state: the accumulator register.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, remove_init, TxnControl, TxnOptions};
use gqed_ir::{Context, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Data width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 8,
            latency: 2,
        }
    }
}

/// Opcode values.
pub const OP_ACC: u128 = 0;
/// Opcode values.
pub const OP_CLR: u128 = 1;
/// Opcode values.
pub const OP_GET: u128 = 2;

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false, // A-QED is inapplicable to interfering designs
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "stale-result-overwrite",
            description: "in_ready ignores an undelivered response; a newly accepted \
                          transaction overwrites the response register under back-pressure",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "carry-leak",
            description: "a micro-architectural carry flag from the previous ACC leaks \
                          into the next ACC's sum",
            class: BugClass::StateLeak,
            expected: g(false),
            min_transactions: 3,
        },
        BugInfo {
            id: "uninit-acc",
            description: "the accumulator register is not reset",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "clear-keeps-high-nibble",
            description: "CLR clears only the low nibble of the accumulator \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false, // consistent across contexts: outside the
                // self-consistency bug class (see DESIGN.md §1)
                aqed: false,
                conventional: true,
            },
            min_transactions: 2,
        },
        BugInfo {
            id: "backpressure-acc-corrupt",
            description: "the accumulator increments once per cycle while the response \
                          is stalled by back-pressure",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "capture-without-accept",
            description: "the data register samples the bus whenever in_valid is high, \
                          even when the request is not accepted (mid-computation corruption)",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "hang-on-zero-data",
            description: "an ACC with data == 0 never completes (timer reload loop)",
            class: BugClass::HandshakeProtocol,
            expected: g(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("accum");

    let opts = TxnOptions {
        ready_ignores_pending: bug == Some("stale-result-overwrite"),
    };
    let ctl = TxnControl::build_with(&mut ctx, &mut ts, params.latency, opts);

    // Request payload.
    let op = ctx.input("op", 2);
    let data = ctx.input("data", w);
    ts.inputs.push(op);
    ts.inputs.push(data);

    // Captured request.
    let cap_when = if bug == Some("capture-without-accept") {
        ctl.in_valid
    } else {
        ctl.accept
    };
    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let data_r = capture(&mut ctx, &mut ts, "data_r", cap_when, data);

    // Architectural state: the accumulator.
    let acc = ctx.state("acc", w);
    // Micro-architectural carry flag (only harmful in the carry-leak bug).
    let carry = ctx.state("carry", 1);

    // Datapath (computed at `done`).
    let sum_wide = {
        let az = ctx.zext(acc, w + 1);
        let dz = ctx.zext(data_r, w + 1);
        let s = ctx.add(az, dz);
        if bug == Some("carry-leak") {
            let cz = ctx.zext(carry, w + 1);
            ctx.add(s, cz)
        } else {
            s
        }
    };
    let sum = ctx.extract(sum_wide, w - 1, 0);
    let carry_out = ctx.extract(sum_wide, w, w);

    let zero = ctx.zero(w);
    let clr_value = if bug == Some("clear-keeps-high-nibble") {
        let hi_mask = ctx.constant(!0u128 << 4, w);
        ctx.and(acc, hi_mask)
    } else {
        zero
    };

    let opc_acc = ctx.constant(OP_ACC, 2);
    let opc_clr = ctx.constant(OP_CLR, 2);
    let is_acc = ctx.eq(op_r, opc_acc);
    let is_clr = ctx.eq(op_r, opc_clr);

    // Response value and architectural update per op.
    let res_get = acc;
    let res_val0 = ctx.ite(is_clr, clr_value, res_get);
    let res_val = ctx.ite(is_acc, sum, res_val0);
    let acc_upd0 = ctx.ite(is_clr, clr_value, acc);
    let acc_upd = ctx.ite(is_acc, sum, acc_upd0);

    // acc register update at done (+ optional back-pressure corruption).
    let acc_next = {
        let held = if bug == Some("backpressure-acc-corrupt") {
            let not_ready = ctx.not(ctl.out_ready);
            let stalled = ctx.and(ctl.pending, not_ready);
            let bumped = ctx.inc(acc);
            ctx.ite(stalled, bumped, acc)
        } else {
            acc
        };
        ctx.ite(ctl.done, acc_upd, held)
    };
    ts.add_state(acc, Some(zero), acc_next);
    if bug == Some("uninit-acc") {
        remove_init(&mut ts, acc);
    }

    // Carry flag updates on ACC completion.
    let fls = ctx.fls();
    let acc_done = ctx.and(ctl.done, is_acc);
    let carry_next = ctx.ite(acc_done, carry_out, carry);
    ts.add_state(carry, Some(fls), carry_next);

    // Response register.
    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    // hang-on-zero-data: the timer reloads while computing an ACC of 0.
    if bug == Some("hang-on-zero-data") {
        let tw = ctx.width(ctl.timer);
        let one_t = ctx.constant(1, tw);
        let data_z = ctx.eq(data_r, zero);
        let hang0 = ctx.and(ctl.busy, is_acc);
        let hang = ctx.and(hang0, data_z);
        let orig = get_next(&ts, ctl.timer);
        let timer_next = ctx.ite(hang, one_t, orig);
        override_next(&mut ts, ctl.timer, timer_next);
    }

    // Observability.
    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("res".into(), res_r),
        ("acc".into(), acc),
    ];

    // Conventional assertions: the CLR and GET paths are covered, the ACC
    // arithmetic path is (deliberately, realistically) not.
    let conventional = {
        let mut bads = Vec::new();
        // After a CLR completes, the accumulator must be zero next cycle:
        // check at the commit point.
        let clr_done = ctx.and(ctl.done, is_clr);
        let nz = ctx.ne(acc_upd, zero);
        let clr_bad = ctx.and(clr_done, nz);
        bads.push(gqed_ir::Bad {
            name: "conv.clr_zeroes_acc".into(),
            term: clr_bad,
        });
        // A GET response must equal the accumulator at the commit point.
        let opc_get = ctx.constant(OP_GET, 2);
        let op_hi = ctx.extract(op_r, 1, 1);
        let is_get = {
            let e2 = ctx.eq(op_r, opc_get);
            ctx.or(e2, op_hi) // op 3 aliases GET
        };
        let get_done = ctx.and(ctl.done, is_get);
        let neq = ctx.ne(res_val, acc);
        let get_bad = ctx.and(get_done, neq);
        bads.push(gqed_ir::Bad {
            name: "conv.get_returns_acc".into(),
            term: get_bad,
        });
        bads
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, data],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![acc],
        conventional,
        meta: DesignMeta {
            name: "accum",
            interfering: true,
            description: "accumulate engine with ACC/CLR/GET transactions",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    /// Drives one transaction to completion; returns the response.
    fn run_txn(sim: &mut Sim, d: &Design, op: u128, data: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], op);
        inp.insert(d.iface.in_payload[1], data);
        // Offer until accepted.
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        // Wait for the response.
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp); // deliver
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn functional_acc_clr_get() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 5), 5);
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 7), 12);
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 99), 12); // data ignored
        assert_eq!(run_txn(&mut sim, &d, OP_CLR, 3), 0);
        assert_eq!(run_txn(&mut sim, &d, OP_GET, 0), 0);
    }

    #[test]
    fn accumulator_wraps() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 200), 200);
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 100), 44); // 300 mod 256
    }

    #[test]
    fn carry_leak_bug_changes_behavior() {
        let d = build(&Params::default(), Some("carry-leak"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        // Provoke a carry: 1 + 255 = 256 → acc 0, carry 1.
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 1), 1);
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 255), 0);
        // Correct design would answer 0; the bug adds the leaked carry.
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 0), 1);
    }

    #[test]
    fn clear_bug_keeps_high_nibble() {
        let d = build(&Params::default(), Some("clear-keeps-high-nibble"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_ACC, 0xf3), 0xf3);
        assert_eq!(run_txn(&mut sim, &d, OP_CLR, 0), 0xf0);
    }

    #[test]
    fn hang_bug_never_responds() {
        let d = build(&Params::default(), Some("hang-on-zero-data"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], OP_ACC);
        inp.insert(d.iface.in_payload[1], 0u128);
        sim.step(&inp); // accepted
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..30 {
            assert_eq!(sim.peek(&inp, d.iface.out_valid), 0, "must hang");
            sim.step(&inp);
        }
    }

    #[test]
    fn bug_ids_are_unique_and_resolvable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }

    #[test]
    fn bug_free_build_has_no_bug() {
        let d = build(&Params::default(), None);
        assert!(!d.is_buggy());
        assert!(d.meta.interfering);
        assert_eq!(d.arch_state.len(), 1);
    }
}
