//! `histogram` — a binning accelerator (interfering).
//!
//! Eight counting bins. Transactions (payload `op[0], bin[2:0]`, response
//! `count[W-1:0]`):
//!
//! | op | name    | response                  | architectural update |
//! |----|---------|---------------------------|----------------------|
//! | 0  | ADD     | incremented count         | `bins[bin] += 1`     |
//! | 1  | READCLR | count before clearing     | `bins[bin] ← 0`      |
//!
//! Architectural state: all bins.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, remove_init, TxnControl};
use gqed_ir::{Context, RegFile, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Count width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 8,
            latency: 1,
        }
    }
}

/// Opcodes.
pub const OP_ADD: u128 = 0;
/// Opcodes.
pub const OP_READCLR: u128 = 1;

const DEPTH: usize = 8;

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "readclr-returns-cleared",
            description: "a READCLR stalled by back-pressure at commit responds with the \
                          already-cleared count (0) instead of the pre-clear value",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "double-inc-on-early-valid",
            description: "a request offered (not accepted) while busy increments the \
                          captured bin a second time",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "uninit-bins",
            description: "the bins are not reset",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "saturate-at-2",
            description: "counts silently saturate at 2 (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 3,
        },
        BugInfo {
            id: "drop-on-bin5",
            description: "the response of an ADD to bin 5 is silently dropped",
            class: BugClass::HandshakeProtocol,
            expected: g(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("histogram");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let op = ctx.input("op", 1);
    let bin = ctx.input("bin", 3);
    ts.inputs.push(op);
    ts.inputs.push(bin);

    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let bin_r = capture(&mut ctx, &mut ts, "bin_r", ctl.accept, bin);

    let bins = RegFile::new(&mut ctx, "bins", DEPTH, w);
    let cur = bins.read(&mut ctx, bin_r);

    let is_add = ctx.not(op_r); // op 0 = ADD
    let is_rdc = op_r;

    let inc = ctx.inc(cur);
    let new_count = if bug == Some("saturate-at-2") {
        let limit = ctx.constant(2, w);
        let at_limit = ctx.uge(cur, limit);
        ctx.ite(at_limit, cur, inc)
    } else {
        inc
    };

    let zero = ctx.zero(w);
    // Response: ADD → incremented count; READCLR → pre-clear count.
    let rdc_res = if bug == Some("readclr-returns-cleared") {
        // When stalled at commit, the response mux reads the post-clear
        // value.
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(ctl.done, not_rdy);
        ctx.ite(stalled, zero, cur)
    } else {
        cur
    };
    let res_val = ctx.ite(is_add, new_count, rdc_res);

    // Bin writes.
    let commit = ctl.done;
    let add_commit = ctx.and(commit, is_add);
    let rdc_commit = ctx.and(commit, is_rdc);
    let extra_inc = if bug == Some("double-inc-on-early-valid") {
        let not_ready = ctx.not(ctl.in_ready);
        ctx.and(ctl.in_valid, not_ready)
    } else {
        ctx.fls()
    };
    for i in 0..DEPTH {
        let word = bins.word(i);
        let idx = ctx.constant(i as u128, 3);
        let here = ctx.eq(bin_r, idx);
        let add_here = ctx.and(add_commit, here);
        let rdc_here = ctx.and(rdc_commit, here);
        let extra_here = ctx.and(extra_inc, here);
        let winc = ctx.inc(word);
        let n0 = ctx.ite(extra_here, winc, word);
        let n1 = ctx.ite(add_here, new_count, n0);
        let next = ctx.ite(rdc_here, zero, n1);
        ts.add_state(word, Some(zero), next);
        if bug == Some("uninit-bins") {
            remove_init(&mut ts, word);
        }
    }

    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    if bug == Some("drop-on-bin5") {
        let b5 = ctx.constant(5, 3);
        let at5 = ctx.eq(bin_r, b5);
        let d0 = ctx.and(ctl.done, is_add);
        let drop = ctx.and(d0, at5);
        let fls = ctx.fls();
        let orig = get_next(&ts, ctl.pending);
        let pn = ctx.ite(drop, fls, orig);
        override_next(&mut ts, ctl.pending, pn);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("res".into(), res_r),
    ];

    // Conventional assertion: an ADD response equals the stored count + 1.
    let conventional = {
        let add_done = ctx.and(ctl.done, is_add);
        let expect = ctx.inc(cur);
        let neq = ctx.ne(res_val, expect);
        let t = ctx.and(add_done, neq);
        vec![gqed_ir::Bad {
            name: "conv.add_increments".into(),
            term: t,
        }]
    };

    let arch_state = bins.words().to_vec();

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, bin],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state,
        conventional,
        meta: DesignMeta {
            name: "histogram",
            interfering: true,
            description: "8-bin counting histogram with ADD/READCLR transactions",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn run_txn(sim: &mut Sim, d: &Design, op: u128, bin: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], op);
        inp.insert(d.iface.in_payload[1], bin);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn add_and_readclr() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_ADD, 3), 1);
        assert_eq!(run_txn(&mut sim, &d, OP_ADD, 3), 2);
        assert_eq!(run_txn(&mut sim, &d, OP_ADD, 5), 1);
        assert_eq!(run_txn(&mut sim, &d, OP_READCLR, 3), 2);
        assert_eq!(run_txn(&mut sim, &d, OP_ADD, 3), 1);
    }

    #[test]
    fn bins_are_independent() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        for b in 0..8u128 {
            assert_eq!(run_txn(&mut sim, &d, OP_ADD, b), 1);
        }
        for b in 0..8u128 {
            assert_eq!(run_txn(&mut sim, &d, OP_READCLR, b), 1);
        }
    }

    #[test]
    fn double_inc_bug_counts_offered_requests() {
        let d = build(&Params::default(), Some("double-inc-on-early-valid"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        // Keep in_valid high continuously: while busy, the offered request
        // leaks an extra increment into the captured bin.
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], OP_ADD);
        inp.insert(d.iface.in_payload[1], 2u128);
        for _ in 0..8 {
            sim.step(&inp);
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..6 {
            sim.step(&inp);
        }
        // Drain and read: the count exceeds the number of accepted ADDs.
        let count = run_txn(&mut sim, &d, OP_READCLR, 2);
        // With a correct design, 8 cycles of continuous offer at latency 1
        // accept at most 3 transactions; the bug inflates the count.
        assert!(count > 3, "bug must inflate count, got {count}");
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
