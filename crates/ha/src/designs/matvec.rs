//! `matvec` — an iterative dot-product engine (non-interfering).
//!
//! A transaction carries two 4-element vectors packed into two words
//! (element width `W`, so each packed word is `4 * W` bits). The engine
//! multiplies two element pairs per cycle (a 2-cycle busy phase) and
//! responds with the dot product.
//!
//! Payload: `a[4W-1:0], b[4W-1:0]`. Response: `dot[2W+2-1:0]`.
//!
//! The `mac-not-cleared` bug is the canonical A-QED bug (A-QED, DAC 2020):
//! the MAC accumulator carries the previous transaction's dot product into
//! the next one.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, TxnControl};
use gqed_ir::{Context, TransitionSystem};

/// Number of vector elements per transaction.
pub const ELEMS: u32 = 4;

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Element width in bits.
    pub width: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params { width: 3 }
    }
}

/// Reference model of the dot product (unsigned elements).
pub fn dot_model(a: u128, b: u128, width: u32) -> u128 {
    let m = (1u128 << width) - 1;
    let rw = 2 * width + 2;
    let rm = (1u128 << rw) - 1;
    let mut acc = 0u128;
    for i in 0..ELEMS {
        let ae = a >> (i * width) & m;
        let be = b >> (i * width) & m;
        acc = acc.wrapping_add(ae * be) & rm;
    }
    acc
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let both = |conv| Detectors {
        gqed: true,
        aqed: true,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "mac-not-cleared",
            description: "the MAC accumulator is not cleared between transactions \
                          (the canonical A-QED bug); the stale accumulator shifts \
                          the second response, so the reference-model assertion \
                          also flags it",
            class: BugClass::StateLeak,
            expected: both(true),
            min_transactions: 2,
        },
        BugInfo {
            id: "index-stuck-on-early-valid",
            description: "a request offered (not accepted) while busy freezes the element \
                          index for one cycle (an element is multiplied twice)",
            class: BugClass::ContextDependent,
            expected: both(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "last-element-dropped",
            description: "the last two elements are never accumulated \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "hang-on-zero-vector",
            description: "a transaction whose first vector is all zeros never completes",
            class: BugClass::HandshakeProtocol,
            expected: both(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let pw = ELEMS * w; // packed payload width
    let rw = 2 * w + 2; // result width
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("matvec");

    // Busy phase: two element pairs per cycle.
    let ctl = TxnControl::build(&mut ctx, &mut ts, ELEMS / 2);

    let a = ctx.input("a", pw);
    let b = ctx.input("b", pw);
    ts.inputs.push(a);
    ts.inputs.push(b);
    let a_r = capture(&mut ctx, &mut ts, "a_r", ctl.accept, a);
    let b_r = capture(&mut ctx, &mut ts, "b_r", ctl.accept, b);

    // Pair index and MAC accumulator: pair 0 is elements {0, 1}, pair 1
    // is elements {2, 3}.
    let idx = ctx.state("idx", 1);
    let mac = ctx.state("mac", rw);
    let zero_i = ctx.zero(1);
    let zero_m = ctx.zero(rw);

    // Split each packed vector into its two element pairs.
    let a_lo = ctx.extract(a_r, 2 * w - 1, 0);
    let a_hi = ctx.extract(a_r, 4 * w - 1, 2 * w);
    let b_lo = ctx.extract(b_r, 2 * w - 1, 0);
    let b_hi = ctx.extract(b_r, 4 * w - 1, 2 * w);
    let a_pair = ctx.ite(idx, a_hi, a_lo);
    let b_pair = ctx.ite(idx, b_hi, b_lo);
    // Two products per step.
    let ae0 = ctx.extract(a_pair, w - 1, 0);
    let ae1 = ctx.extract(a_pair, 2 * w - 1, w);
    let be0 = ctx.extract(b_pair, w - 1, 0);
    let be1 = ctx.extract(b_pair, 2 * w - 1, w);
    let a0z = ctx.zext(ae0, rw);
    let b0z = ctx.zext(be0, rw);
    let a1z = ctx.zext(ae1, rw);
    let b1z = ctx.zext(be1, rw);
    let p0 = ctx.mul(a0z, b0z);
    let p1 = ctx.mul(a1z, b1z);
    let prod = ctx.add(p0, p1);

    // The skip bug: the last pair's products are suppressed.
    let stepping = ctl.busy;
    let effective_step = if bug == Some("last-element-dropped") {
        let not_last = ctx.not(idx);
        ctx.and(stepping, not_last)
    } else {
        stepping
    };

    let mac_acc = ctx.add(mac, prod);
    let mac_step = ctx.ite(effective_step, mac_acc, mac);
    let mac_next = if bug == Some("mac-not-cleared") {
        mac_step // accumulator never reset at accept
    } else {
        ctx.ite(ctl.accept, zero_m, mac_step)
    };
    ts.add_state(mac, Some(zero_m), mac_next);

    // Index advance (optionally frozen by an offered request).
    let one_i = ctx.constant(1, 1);
    let idx_inc = ctx.add(idx, one_i);
    let freeze = if bug == Some("index-stuck-on-early-valid") {
        let not_ready = ctx.not(ctl.in_ready);
        ctx.and(ctl.in_valid, not_ready)
    } else {
        ctx.fls()
    };
    let adv0 = ctx.ite(stepping, idx_inc, idx);
    let adv1 = ctx.ite(freeze, idx, adv0);
    let idx_next = ctx.ite(ctl.accept, zero_i, adv1);
    ts.add_state(idx, Some(zero_i), idx_next);

    // Response: the accumulator at done already includes the final product
    // (done coincides with the last busy cycle's commit).
    let res_val = ctx.ite(effective_step, mac_acc, mac);
    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    if bug == Some("hang-on-zero-vector") {
        let zp = ctx.zero(pw);
        let a_zero = ctx.eq(a_r, zp);
        let hang = ctx.and(ctl.busy, a_zero);
        let tw = ctx.width(ctl.timer);
        let one_t = ctx.constant(1, tw);
        let orig = get_next(&ts, ctl.timer);
        let tn = ctx.ite(hang, one_t, orig);
        override_next(&mut ts, ctl.timer, tn);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("dot".into(), res_r),
    ];

    // Conventional assertion: the committed response equals the fully
    // combinational reference dot product.
    let conventional = {
        let mut reference = ctx.zero(rw);
        for i in 0..ELEMS {
            let ae = ctx.extract(a_r, (i + 1) * w - 1, i * w);
            let be = ctx.extract(b_r, (i + 1) * w - 1, i * w);
            let az = ctx.zext(ae, rw);
            let bz = ctx.zext(be, rw);
            let p = ctx.mul(az, bz);
            reference = ctx.add(reference, p);
        }
        let neq = ctx.ne(res_val, reference);
        let t = ctx.and(ctl.done, neq);
        vec![gqed_ir::Bad {
            name: "conv.dot_matches_reference".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![a, b],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![],
        conventional,
        meta: DesignMeta {
            name: "matvec",
            interfering: false,
            description: "iterative 4-element dot-product engine",
            latency: ELEMS / 2,
            recommended_bound: 6,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn dot(sim: &mut Sim, d: &Design, a: u128, b: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], a);
        inp.insert(d.iface.in_payload[1], b);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..30 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    fn pack(e: [u128; 4], w: u32) -> u128 {
        e.iter()
            .enumerate()
            .map(|(i, &v)| (v & ((1 << w) - 1)) << (i as u32 * w))
            .sum()
    }

    #[test]
    fn computes_dot_product() {
        let p = Params::default();
        let d = build(&p, None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let a = pack([1, 2, 3, 4], p.width);
        let b = pack([5, 6, 7, 3], p.width);
        assert_eq!(dot(&mut sim, &d, a, b), 5 + 12 + 21 + 12);
        assert_eq!(dot(&mut sim, &d, a, b), dot_model(a, b, p.width));
    }

    #[test]
    fn consecutive_transactions_independent() {
        let p = Params::default();
        let d = build(&p, None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let a = pack([7, 7, 7, 7], p.width);
        let first = dot(&mut sim, &d, a, a);
        let second = dot(&mut sim, &d, a, a);
        assert_eq!(first, second, "non-interfering by contract");
        assert_eq!(first, dot_model(a, a, p.width));
    }

    #[test]
    fn mac_bug_accumulates_across_transactions() {
        let p = Params::default();
        let d = build(&p, Some("mac-not-cleared"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let a = pack([1, 0, 0, 0], p.width);
        let first = dot(&mut sim, &d, a, a);
        let second = dot(&mut sim, &d, a, a);
        assert_eq!(first, 1);
        assert_eq!(second, 2, "leaked accumulator");
    }

    #[test]
    fn dropped_element_bug() {
        let p = Params::default();
        let d = build(&p, Some("last-element-dropped"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let a = pack([1, 1, 1, 1], p.width);
        assert_eq!(dot(&mut sim, &d, a, a), 2);
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
