//! `fir` — a 4-tap FIR filter with loadable coefficients (interfering).
//!
//! Two transaction kinds (payload `op[0], idx[1:0], data[W-1:0]`, response
//! `y[2W+2-1:0]`):
//!
//! | op | name         | response                   | architectural update |
//! |----|--------------|----------------------------|----------------------|
//! | 0  | LOAD(idx, c) | previous coefficient `idx` | `coef[idx] ← c`      |
//! | 1  | FEED(x)      | `Σ coef[i] · win[i]`       | window shifts in `x` |
//!
//! Responses interfere through both the coefficient bank (configuration
//! state) and the sample window (data state) — a two-dimensional
//! architectural state, the richest in the library.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, remove_init, TxnControl};
use gqed_ir::{Context, TermId, TransitionSystem};

/// Number of filter taps.
pub const TAPS: usize = 4;

/// Opcodes.
pub const OP_LOAD: u128 = 0;
/// Opcodes.
pub const OP_FEED: u128 = 1;

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Sample/coefficient width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 4,
            latency: 2,
        }
    }
}

/// Reference model: the response to FEED(x) given coefficients and the
/// window *after* shifting in `x` (newest sample first).
pub fn fir_model(coefs: &[u128], window: &[u128], width: u32) -> u128 {
    let rw = 2 * width + 2;
    let rm = (1u128 << rw) - 1;
    coefs
        .iter()
        .zip(window)
        .fold(0u128, |acc, (&c, &w)| acc.wrapping_add(c * w) & rm)
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "coef-write-during-stall",
            description: "a LOAD committed under back-pressure writes the coefficient of \
                          the *live bus* index instead of the captured one",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "window-shift-on-load",
            description: "a LOAD erroneously shifts the sample window too",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false, // deterministic per transaction sequence
                aqed: false,
                conventional: true,
            },
            min_transactions: 3,
        },
        BugInfo {
            id: "uninit-coefs",
            description: "the coefficient bank is not reset",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "stall-rotates-window",
            description: "the sample window rotates once per stalled response cycle",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let rw = 2 * w + 2;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("fir");

    let ctl = TxnControl::build(&mut ctx, &mut ts, params.latency);

    let op = ctx.input("op", 1);
    let idx = ctx.input("idx", 2);
    let data = ctx.input("data", w);
    ts.inputs.push(op);
    ts.inputs.push(idx);
    ts.inputs.push(data);

    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let idx_r = capture(&mut ctx, &mut ts, "idx_r", ctl.accept, idx);
    let data_r = capture(&mut ctx, &mut ts, "data_r", ctl.accept, data);

    // Architectural state: coefficient bank + sample window.
    let coefs: Vec<TermId> = (0..TAPS)
        .map(|i| ctx.state(format!("coef[{i}]"), w))
        .collect();
    let win: Vec<TermId> = (0..TAPS)
        .map(|i| ctx.state(format!("win[{i}]"), w))
        .collect();

    let is_feed = op_r;
    let is_load = ctx.not(op_r);

    // Response: LOAD returns the previous coefficient; FEED returns the
    // dot product over the window *including* the incoming sample.
    let mut old_coef = coefs[0];
    for (i, &c) in coefs.iter().enumerate().skip(1) {
        let ic = ctx.constant(i as u128, 2);
        let hit = ctx.eq(idx_r, ic);
        old_coef = ctx.ite(hit, c, old_coef);
    }
    let old_coef_z = ctx.zext(old_coef, rw);

    // Effective window during a FEED: data_r is the newest sample.
    let eff_win: Vec<TermId> = std::iter::once(data_r)
        .chain(win.iter().copied().take(TAPS - 1))
        .collect();
    let mut dot = ctx.zero(rw);
    for (c, s) in coefs.iter().zip(&eff_win) {
        let cz = ctx.zext(*c, rw);
        let sz = ctx.zext(*s, rw);
        let p = ctx.mul(cz, sz);
        dot = ctx.add(dot, p);
    }
    let res_val = ctx.ite(is_feed, dot, old_coef_z);

    // Coefficient updates.
    let commit = ctl.done;
    let load_commit = ctx.and(commit, is_load);
    let wr_idx = if bug == Some("coef-write-during-stall") {
        // Under back-pressure at commit, the live bus index is used.
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(commit, not_rdy);
        ctx.ite(stalled, idx, idx_r)
    } else {
        idx_r
    };
    for (i, &c) in coefs.iter().enumerate() {
        let ic = ctx.constant(i as u128, 2);
        let here0 = ctx.eq(wr_idx, ic);
        let here = ctx.and(load_commit, here0);
        let next = ctx.ite(here, data_r, c);
        let zero = ctx.zero(w);
        ts.add_state(c, Some(zero), next);
        if bug == Some("uninit-coefs") {
            remove_init(&mut ts, c);
        }
    }

    // Window updates.
    let feed_commit = ctx.and(commit, is_feed);
    let shift = if bug == Some("window-shift-on-load") {
        commit // every commit shifts, LOADs included
    } else {
        feed_commit
    };
    let rotate = if bug == Some("stall-rotates-window") {
        let not_rdy = ctx.not(ctl.out_ready);
        ctx.and(ctl.pending, not_rdy)
    } else {
        ctx.fls()
    };
    for i in 0..TAPS {
        let incoming = if i == 0 { data_r } else { win[i - 1] };
        let rotated = win[(i + 1) % TAPS];
        let n0 = ctx.ite(rotate, rotated, win[i]);
        let next = ctx.ite(shift, incoming, n0);
        let zero = ctx.zero(w);
        ts.add_state(win[i], Some(zero), next);
    }

    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("y".into(), res_r),
    ];

    // Conventional assertion: a LOAD must not disturb the window.
    let conventional = {
        let mut moved = ctx.fls();
        for (i, &wreg) in win.iter().enumerate() {
            let incoming = if i == 0 { data_r } else { win[i - 1] };
            let will_change = ctx.ne(incoming, wreg);
            // On a LOAD commit the window must hold its values; flag any
            // slot that would take a new value.
            let shift_now = ctx.and(load_commit, shift);
            let bad_here = ctx.and(shift_now, will_change);
            moved = ctx.or(moved, bad_here);
        }
        vec![gqed_ir::Bad {
            name: "conv.load_preserves_window".into(),
            term: moved,
        }]
    };

    let mut arch_state = coefs.clone();
    arch_state.extend(win.iter().copied());

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, idx, data],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state,
        conventional,
        meta: DesignMeta {
            name: "fir",
            interfering: true,
            description: "4-tap FIR filter with loadable coefficients",
            latency: params.latency,
            recommended_bound: 8,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;

    fn load(drv: &mut Driver, idx: u128, c: u128) -> u128 {
        drv.txn(&[OP_LOAD, idx, c]).unwrap()[0]
    }

    fn feed(drv: &mut Driver, x: u128) -> u128 {
        drv.txn(&[OP_FEED, 0, x]).unwrap()[0]
    }

    #[test]
    fn computes_filter_response() {
        let p = Params::default();
        let d = build(&p, None);
        let mut drv = Driver::new(&d);
        for (i, c) in [3u128, 1, 2, 1].into_iter().enumerate() {
            assert_eq!(load(&mut drv, i as u128, c), 0, "prev coef is 0");
        }
        // Feed 5: window = [5,0,0,0], y = 3*5.
        assert_eq!(feed(&mut drv, 5), 15);
        // Feed 7: window = [7,5,0,0], y = 3*7 + 1*5 = 26.
        assert_eq!(feed(&mut drv, 7), 26);
        // Feed 1: window = [1,7,5,0], y = 3 + 7 + 10 = 20.
        assert_eq!(feed(&mut drv, 1), 20);
    }

    #[test]
    fn matches_reference_model() {
        let p = Params::default();
        let d = build(&p, None);
        let mut drv = Driver::new(&d);
        let coefs = [2u128, 0, 3, 1];
        for (i, &c) in coefs.iter().enumerate() {
            let _ = load(&mut drv, i as u128, c);
        }
        let mut window = vec![0u128; TAPS];
        for x in [1u128, 9, 4, 15, 2, 8] {
            window.insert(0, x);
            window.truncate(TAPS);
            assert_eq!(feed(&mut drv, x), fir_model(&coefs, &window, p.width));
        }
    }

    #[test]
    fn load_returns_previous_coefficient() {
        let d = build(&Params::default(), None);
        let mut drv = Driver::new(&d);
        assert_eq!(load(&mut drv, 2, 9), 0);
        assert_eq!(load(&mut drv, 2, 4), 9);
        assert_eq!(load(&mut drv, 2, 0), 4);
    }

    #[test]
    fn window_shift_on_load_bug_changes_output() {
        let d = build(&Params::default(), Some("window-shift-on-load"));
        let mut drv = Driver::new(&d);
        let _ = load(&mut drv, 0, 1);
        let _ = feed(&mut drv, 5); // clean: window [5,...]
        let _ = load(&mut drv, 1, 1); // bug: shifts window again
                                      // With coef = [1,1,0,0]: clean y(3) = 3 + 5; buggy window lost 5's
                                      // position — y = 3 + (garbage shifted) ⇒ differs from 8.
        let y = feed(&mut drv, 3);
        assert_ne!(y, 8, "bug must disturb the window");
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
