//! `vecadd` — an element-pair adder (non-interfering).
//!
//! The simplest accelerator in the suite: a transaction carries two
//! operands and responds with their sum. The response is a pure function
//! of the payload, so plain A-QED applies — this design anchors the
//! "A-QED = G-QED with an empty architectural state" special case.
//!
//! Payload: `a[W-1:0], b[W-1:0]`. Response: `sum[W:0]` (with carry).

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, TxnControl, TxnOptions};
use gqed_ir::{Context, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Operand width in bits.
    pub width: u32,
    /// Compute latency in cycles.
    pub latency: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            width: 8,
            latency: 1,
        }
    }
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let both = |conv| Detectors {
        gqed: true,
        aqed: true,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "result-recomputed-from-bus",
            description: "while the response waits for out_ready, the result register \
                          re-samples the live operand bus every cycle",
            class: BugClass::ContextDependent,
            expected: both(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "stale-result-overwrite",
            description: "in_ready ignores an undelivered response; a newly accepted \
                          transaction overwrites it under back-pressure",
            class: BugClass::ContextDependent,
            expected: both(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "nibble-carry-break",
            description: "the carry chain is broken between bits 3 and 4 \
                          (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
        BugInfo {
            id: "drop-on-equal-operands",
            description: "the response of a transaction with a == b is silently dropped \
                          (never presented)",
            class: BugClass::HandshakeProtocol,
            expected: both(false),
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("vecadd");

    let opts = TxnOptions {
        ready_ignores_pending: bug == Some("stale-result-overwrite"),
    };
    let ctl = TxnControl::build_with(&mut ctx, &mut ts, params.latency, opts);

    let a = ctx.input("a", w);
    let b = ctx.input("b", w);
    ts.inputs.push(a);
    ts.inputs.push(b);

    let a_r = capture(&mut ctx, &mut ts, "a_r", ctl.accept, a);
    let b_r = capture(&mut ctx, &mut ts, "b_r", ctl.accept, b);

    let sum_of = |ctx: &mut Context, x, y| {
        let xz = ctx.zext(x, w + 1);
        let yz = ctx.zext(y, w + 1);
        ctx.add(xz, yz)
    };
    let full = sum_of(&mut ctx, a_r, b_r);
    let res_val = if bug == Some("nibble-carry-break") {
        // Low nibble and high part added independently: the carry out of
        // bit 3 is dropped.
        let alo = ctx.extract(a_r, 3, 0);
        let blo = ctx.extract(b_r, 3, 0);
        let lo = ctx.add(alo, blo);
        let ahi = ctx.extract(a_r, w - 1, 4);
        let bhi = ctx.extract(b_r, w - 1, 4);
        let hiz_a = ctx.zext(ahi, w - 3);
        let hiz_b = ctx.zext(bhi, w - 3);
        let hi = ctx.add(hiz_a, hiz_b);
        ctx.concat(hi, lo)
    } else {
        full
    };

    let res_r = {
        let when = if bug == Some("result-recomputed-from-bus") {
            // The response register keeps sampling a live-bus sum.
            ctx.or(ctl.done, ctl.pending)
        } else {
            ctl.done
        };
        let value = if bug == Some("result-recomputed-from-bus") {
            let live = sum_of(&mut ctx, a, b);
            ctx.ite(ctl.done, res_val, live)
        } else {
            res_val
        };
        capture(&mut ctx, &mut ts, "res_r", when, value)
    };

    if bug == Some("drop-on-equal-operands") {
        // The completion pulse is swallowed: `pending` is never set for
        // the affected transaction, so no response appears.
        let eq = ctx.eq(a_r, b_r);
        let drop = ctx.and(ctl.done, eq);
        let fls = ctx.fls();
        let orig = get_next(&ts, ctl.pending);
        let pn = ctx.ite(drop, fls, orig);
        override_next(&mut ts, ctl.pending, pn);
    }

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("sum".into(), res_r),
    ];

    // Conventional assertion: the committed response equals a_r + b_r
    // (a full functional spec is feasible for this trivial design).
    let conventional = {
        let neq = ctx.ne(res_val, full);
        let t = ctx.and(ctl.done, neq);
        vec![gqed_ir::Bad {
            name: "conv.sum_correct".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![a, b],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![], // non-interfering
        conventional,
        meta: DesignMeta {
            name: "vecadd",
            interfering: false,
            description: "element-pair adder with carry-out",
            latency: params.latency,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn add(sim: &mut Sim, d: &Design, a: u128, b: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], a);
        inp.insert(d.iface.in_payload[1], b);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..20 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn adds_with_carry() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(add(&mut sim, &d, 3, 4), 7);
        assert_eq!(add(&mut sim, &d, 200, 100), 300);
        assert_eq!(add(&mut sim, &d, 255, 255), 510);
    }

    #[test]
    fn carry_break_bug_drops_nibble_carry() {
        let d = build(&Params::default(), Some("nibble-carry-break"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(add(&mut sim, &d, 0x0f, 0x01), 0x00); // 0x10 expected
        assert_eq!(add(&mut sim, &d, 0x10, 0x20), 0x30); // no nibble carry: fine
    }

    #[test]
    fn bus_recompute_bug_corrupts_under_stall() {
        let d = build(&Params::default(), Some("result-recomputed-from-bus"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 0u128);
        inp.insert(d.iface.in_payload[0], 3u128);
        inp.insert(d.iface.in_payload[1], 4u128);
        sim.step(&inp); // accept 3+4
        inp.insert(d.iface.in_valid, 0);
        // Change the bus while the response is stalled.
        inp.insert(d.iface.in_payload[0], 0x50u128);
        inp.insert(d.iface.in_payload[1], 0x05u128);
        for _ in 0..4 {
            sim.step(&inp);
        }
        inp.insert(d.iface.out_ready, 1);
        let res = sim.peek(&inp, d.iface.out_payload[0]);
        assert_eq!(res, 0x55, "bug must leak the live bus sum");
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }

    #[test]
    fn non_interfering_has_empty_arch_state() {
        let d = build(&Params::default(), None);
        assert!(d.arch_state.is_empty());
        assert!(!d.meta.interfering);
    }
}
