//! `dma` — a configuration-driven transfer engine (interfering).
//!
//! **Stand-in for the paper's industrial case study**: a descriptor-driven
//! DMA-style block whose transfer behavior depends on configuration
//! registers programmed by earlier transactions — the interference pattern
//! that motivated G-QED at Infineon. The "bus" is replaced by an on-chip
//! pattern generator (we have no bus model), which preserves the property
//! that a transfer's response is a function of the configuration *history*.
//!
//! Transactions (payload `op[1:0], data[W-1:0]`, response `res[W-1:0]`):
//!
//! | op | name       | response          | architectural update |
//! |----|------------|-------------------|----------------------|
//! | 0  | CFG_STRIDE | previous stride   | `stride ← data`      |
//! | 1  | CFG_SEED   | previous seed     | `seed ← data`        |
//! | 2  | CFG_MODE   | previous mode     | `mode ← data[0]`     |
//! | 3  | XFER       | checksum of burst | none                 |
//!
//! An XFER with length field `len = data[1:0]` processes `len + 1` words,
//! one per cycle:
//! starting from `cur = seed`, each cycle does `sum += cur` and
//! `cur += stride` (mode 0) or `sum ^= cur`, `cur += stride` (mode 1); the
//! response is `sum`.
//!
//! Architectural state: `stride`, `seed`, `mode`.

use crate::iface::{resolve_bug, BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
use crate::skeleton::{capture, get_next, override_next, remove_init, TxnControl};
use gqed_ir::{Context, TransitionSystem};

/// Build parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Data width in bits.
    pub width: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params { width: 8 }
    }
}

/// Opcodes.
pub const OP_CFG_STRIDE: u128 = 0;
/// Opcodes.
pub const OP_CFG_SEED: u128 = 1;
/// Opcodes.
pub const OP_CFG_MODE: u128 = 2;
/// Opcodes.
pub const OP_XFER: u128 = 3;

/// Reference model of an XFER burst.
pub fn xfer_model(stride: u128, seed: u128, mode: u128, len: u128, width: u32) -> u128 {
    let m = if width >= 128 {
        u128::MAX
    } else {
        (1 << width) - 1
    };
    let mut cur = seed & m;
    let mut sum = 0u128;
    for _ in 0..len {
        if mode & 1 == 0 {
            sum = sum.wrapping_add(cur) & m;
        } else {
            sum ^= cur;
        }
        cur = cur.wrapping_add(stride) & m;
    }
    sum & m
}

/// The injectable-bug catalogue.
pub fn bugs() -> Vec<BugInfo> {
    let g = |conv| Detectors {
        gqed: true,
        aqed: false,
        conventional: conv,
    };
    vec![
        BugInfo {
            id: "cfg-leak-while-busy",
            description: "an *unaccepted* request offered while an XFER is in flight \
                          writes the configuration registers anyway (the classic \
                          config-during-transfer industrial bug)",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "stall-seed-drift",
            description: "the seed configuration register increments once per cycle \
                          while a response is stalled by back-pressure",
            class: BugClass::ContextDependent,
            expected: g(false),
            min_transactions: 2,
        },
        BugInfo {
            id: "len-zero-hang",
            description: "an XFER whose descriptor length field is 0 never completes",
            class: BugClass::HandshakeProtocol,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "uninit-stride",
            description: "the stride configuration register is not reset",
            class: BugClass::Uninitialized,
            expected: g(false),
            min_transactions: 1,
        },
        BugInfo {
            id: "cfg-returns-new",
            description: "CFG_* responses return the new register value instead of the \
                          previous one (deterministic functional error)",
            class: BugClass::ConsistentFunctional,
            expected: Detectors {
                gqed: false,
                aqed: false,
                conventional: true,
            },
            min_transactions: 1,
        },
    ]
}

/// Builds the design, optionally injecting the named bug.
pub fn build(params: &Params, bug: Option<&str>) -> Design {
    let bug = bug.map(|id| resolve_bug(&bugs(), id));
    let w = params.width;
    assert!(w >= 3, "width must hold the 2-bit length field");
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("dma");

    // Latency 2 skeleton; XFER stretches the busy phase below so a
    // transfer of length field `len` processes len + 1 words.
    let ctl = TxnControl::build(&mut ctx, &mut ts, 2);

    let op = ctx.input("op", 2);
    let data = ctx.input("data", w);
    ts.inputs.push(op);
    ts.inputs.push(data);

    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let data_r = capture(&mut ctx, &mut ts, "data_r", ctl.accept, data);

    // Configuration registers (architectural state).
    let stride = ctx.state("stride", w);
    let seed = ctx.state("seed", w);
    let mode = ctx.state("mode", 1);

    let opc_stride = ctx.constant(OP_CFG_STRIDE, 2);
    let opc_seed = ctx.constant(OP_CFG_SEED, 2);
    let opc_mode = ctx.constant(OP_CFG_MODE, 2);
    let opc_xfer = ctx.constant(OP_XFER, 2);
    let is_cfg_stride = ctx.eq(op_r, opc_stride);
    let is_cfg_seed = ctx.eq(op_r, opc_seed);
    let is_cfg_mode = ctx.eq(op_r, opc_mode);
    let is_xfer = ctx.eq(op_r, opc_xfer);

    // XFER burst engine: the skeleton timer is reloaded with len-1 at
    // accept; `cur`/`sum` run one word per busy cycle.
    let len_bits = ctx.extract(data, 1, 0); // live bus at the accept cycle
                                            // A separate burst counter stretches the busy phase: while it is
                                            // non-zero the skeleton timer is held at 1, so `done` cannot fire.
    let burst = ctx.state("burst", 2);
    let zero3 = ctx.zero(2);
    let one3 = ctx.constant(1, 2);
    let burst_nz = ctx.ne(burst, zero3);
    let burst_dec = ctx.sub(burst, one3);
    let accept_is_xfer = {
        let opc = ctx.constant(OP_XFER, 2);
        let e = ctx.eq(op, opc); // live op bus at accept
        ctx.and(ctl.accept, e)
    };
    let burst_next0 = ctx.ite(burst_nz, burst_dec, burst);
    let burst_next = ctx.ite(accept_is_xfer, len_bits, burst_next0);
    ts.add_state(burst, Some(zero3), burst_next);

    // Stretch busy: while burst != 0, `done` must not fire. The skeleton's
    // timer reaches 0 after one cycle; override it to stay 1 while the
    // burst is still draining.
    {
        let tw = ctx.width(ctl.timer);
        let one_t = ctx.constant(1, tw);
        let orig = get_next(&ts, ctl.timer);
        let burst_active = ctx.ne(burst, zero3);
        let hold = ctx.and(ctl.busy, burst_active);
        let tn = ctx.ite(hold, one_t, orig);
        override_next(&mut ts, ctl.timer, tn);
    }

    // Burst datapath.
    let cur = ctx.state("cur", w);
    let sum = ctx.state("sum", w);
    let zero_w = ctx.zero(w);
    let step = ctx.and(ctl.busy, is_xfer); // one word per busy cycle
    let cur_adv = ctx.add(cur, stride);
    let cur_next0 = ctx.ite(step, cur_adv, cur);
    let cur_next = ctx.ite(accept_is_xfer, seed, cur_next0);
    ts.add_state(cur, Some(zero_w), cur_next);

    let sum_add = ctx.add(sum, cur);
    let sum_xor = ctx.xor(sum, cur);
    let sum_word = ctx.ite(mode, sum_xor, sum_add);
    let sum_next0 = ctx.ite(step, sum_word, sum);
    let sum_next = ctx.ite(accept_is_xfer, zero_w, sum_next0);
    ts.add_state(sum, Some(zero_w), sum_next);

    // Configuration register updates at commit (CFG ops), plus the
    // leak-while-busy bug path.
    let commit = ctl.done;
    let leak = if bug == Some("cfg-leak-while-busy") {
        // An offered-but-unaccepted request writes the registers live.
        let not_ready = ctx.not(ctl.in_ready);
        ctx.and(ctl.in_valid, not_ready)
    } else {
        ctx.fls()
    };
    let cfg_stride_commit = ctx.and(commit, is_cfg_stride);
    let stride_leak = {
        let opc = ctx.constant(OP_CFG_STRIDE, 2);
        let e = ctx.eq(op, opc);
        ctx.and(leak, e)
    };
    let stride_next0 = ctx.ite(cfg_stride_commit, data_r, stride);
    let stride_next = ctx.ite(stride_leak, data, stride_next0);
    ts.add_state(stride, Some(zero_w), stride_next);
    if bug == Some("uninit-stride") {
        remove_init(&mut ts, stride);
    }
    let cfg_seed_commit = ctx.and(commit, is_cfg_seed);
    let seed_leak = {
        let opc = ctx.constant(OP_CFG_SEED, 2);
        let e = ctx.eq(op, opc);
        ctx.and(leak, e)
    };
    let seed_next0 = ctx.ite(cfg_seed_commit, data_r, seed);
    let seed_next1 = ctx.ite(seed_leak, data, seed_next0);
    let seed_next = if bug == Some("stall-seed-drift") {
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(ctl.pending, not_rdy);
        let drifted = ctx.inc(seed);
        ctx.ite(stalled, drifted, seed_next1)
    } else {
        seed_next1
    };
    ts.add_state(seed, Some(zero_w), seed_next);
    let cfg_mode_commit = ctx.and(commit, is_cfg_mode);
    let mode_bit = ctx.bit(data_r, 0);
    let mode_next = ctx.ite(cfg_mode_commit, mode_bit, mode);
    let fls = ctx.fls();
    ts.add_state(mode, Some(fls), mode_next);

    // Response.
    let old_cfg0 = ctx.ite(is_cfg_seed, seed, stride);
    let mode_z = ctx.zext(mode, w);
    let old_cfg = ctx.ite(is_cfg_mode, mode_z, old_cfg0);
    let data_bit0 = ctx.bit(data_r, 0);
    let data_mode = ctx.zext(data_bit0, w);
    let new_cfg = ctx.ite(is_cfg_mode, data_mode, data_r);
    let cfg_res = if bug == Some("cfg-returns-new") {
        new_cfg
    } else {
        old_cfg
    };
    let res_val = ctx.ite(is_xfer, sum, cfg_res);

    if bug == Some("len-zero-hang") {
        // XFER with len field 0: keep the timer at 1 forever.
        let len_r = ctx.extract(data_r, 1, 0);
        let len_z = ctx.eq(len_r, zero3);
        let h0 = ctx.and(ctl.busy, is_xfer);
        let hang = ctx.and(h0, len_z);
        let tw = ctx.width(ctl.timer);
        let one_t = ctx.constant(1, tw);
        let orig = get_next(&ts, ctl.timer);
        let tn = ctx.ite(hang, one_t, orig);
        override_next(&mut ts, ctl.timer, tn);
    }

    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);

    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("res".into(), res_r),
        ("stride".into(), stride),
        ("seed".into(), seed),
    ];

    // Conventional assertion: CFG responses return the *previous* value.
    let conventional = {
        let is_cfg = ctx.not(is_xfer);
        let cfg_done = ctx.and(ctl.done, is_cfg);
        let neq = ctx.ne(res_val, old_cfg);
        let t = ctx.and(cfg_done, neq);
        vec![gqed_ir::Bad {
            name: "conv.cfg_returns_old".into(),
            term: t,
        }]
    };

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, data],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![stride, seed, mode],
        conventional,
        meta: DesignMeta {
            name: "dma",
            interfering: true,
            description:
                "configuration-driven burst transfer engine (industrial case-study stand-in)",
            latency: 4,
            recommended_bound: 12,
        },
        injected_bug: bug,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Sim;
    use std::collections::HashMap;

    fn run_txn(sim: &mut Sim, d: &Design, op: u128, data: u128) -> u128 {
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], op);
        inp.insert(d.iface.in_payload[1], data);
        loop {
            let accepted = sim.peek(&inp, d.iface.in_ready) == 1;
            sim.step(&inp);
            if accepted {
                break;
            }
        }
        inp.insert(d.iface.in_valid, 0);
        for _ in 0..30 {
            if sim.peek(&inp, d.iface.out_valid) == 1 {
                let res = sim.peek(&inp, d.iface.out_payload[0]);
                sim.step(&inp);
                return res;
            }
            sim.step(&inp);
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn cfg_returns_previous_value() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        assert_eq!(run_txn(&mut sim, &d, OP_CFG_STRIDE, 3), 0);
        assert_eq!(run_txn(&mut sim, &d, OP_CFG_STRIDE, 7), 3);
        assert_eq!(run_txn(&mut sim, &d, OP_CFG_SEED, 10), 0);
    }

    #[test]
    fn xfer_matches_model() {
        let p = Params::default();
        let d = build(&p, None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let _ = run_txn(&mut sim, &d, OP_CFG_STRIDE, 3);
        let _ = run_txn(&mut sim, &d, OP_CFG_SEED, 5);
        for len_field in [0u128, 1, 2, 3] {
            let got = run_txn(&mut sim, &d, OP_XFER, len_field);
            // The burst engine processes len_field + 1 words (the commit
            // cycle processes the last one).
            let expect = xfer_model(3, 5, 0, len_field + 1, p.width);
            assert_eq!(got, expect, "len_field={len_field}");
        }
    }

    #[test]
    fn xfer_mode_xor() {
        let p = Params::default();
        let d = build(&p, None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let _ = run_txn(&mut sim, &d, OP_CFG_STRIDE, 1);
        let _ = run_txn(&mut sim, &d, OP_CFG_SEED, 9);
        let _ = run_txn(&mut sim, &d, OP_CFG_MODE, 1);
        let got = run_txn(&mut sim, &d, OP_XFER, 3);
        assert_eq!(got, xfer_model(1, 9, 1, 4, p.width));
    }

    #[test]
    fn interference_config_changes_xfer() {
        let d = build(&Params::default(), None);
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let _ = run_txn(&mut sim, &d, OP_CFG_STRIDE, 1);
        let _ = run_txn(&mut sim, &d, OP_CFG_SEED, 0);
        let r1 = run_txn(&mut sim, &d, OP_XFER, 2);
        let _ = run_txn(&mut sim, &d, OP_CFG_STRIDE, 5);
        let r2 = run_txn(&mut sim, &d, OP_XFER, 2);
        assert_ne!(r1, r2, "same XFER payload must differ across configs");
    }

    #[test]
    fn cfg_leak_bug_reacts_to_unaccepted_requests() {
        let d = build(&Params::default(), Some("cfg-leak-while-busy"));
        let mut sim = Sim::new(&d.ctx, &d.ts);
        let _ = run_txn(&mut sim, &d, OP_CFG_SEED, 5);
        let _ = run_txn(&mut sim, &d, OP_CFG_STRIDE, 1);
        // Start a long XFER and keep offering a CFG_STRIDE while busy.
        let mut inp = HashMap::new();
        inp.insert(d.iface.in_valid, 1u128);
        inp.insert(d.iface.out_ready, 1u128);
        inp.insert(d.iface.in_payload[0], OP_XFER);
        inp.insert(d.iface.in_payload[1], 3u128);
        sim.step(&inp); // accept the XFER
                        // While busy, offer (unaccepted) CFG_STRIDE=0xf.
        inp.insert(d.iface.in_payload[0], OP_CFG_STRIDE);
        inp.insert(d.iface.in_payload[1], 0xfu128);
        sim.step(&inp);
        assert_eq!(
            sim.state_value(d.ts.output("stride").unwrap()),
            0xf,
            "leak bug must write stride from an unaccepted request"
        );
    }

    #[test]
    fn bug_ids_unique_and_buildable() {
        let all = bugs();
        let mut ids: Vec<&str> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        for b in &all {
            let _ = build(&Params::default(), Some(b.id));
        }
    }
}
