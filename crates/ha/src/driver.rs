//! Concrete transaction driver: a testbench harness over the simulator.
//!
//! Drives a [`Design`] transaction by transaction through its ready/valid
//! interface — the role a UVM-style driver plays in a conventional flow.
//! Used by the designs' golden-model property tests and by the simulation
//! baseline of the evaluation.

use crate::iface::Design;
use gqed_ir::Sim;
use std::collections::HashMap;

/// Error from a driven transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriveError {
    /// The design did not accept the request within the cycle budget.
    NotAccepted,
    /// The design did not respond within the cycle budget.
    NoResponse,
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::NotAccepted => write!(f, "request not accepted within budget"),
            DriveError::NoResponse => write!(f, "no response within budget"),
        }
    }
}

impl std::error::Error for DriveError {}

/// Blocking transaction driver over a design's concrete simulation.
pub struct Driver<'a> {
    design: &'a Design,
    sim: Sim<'a>,
    /// Cycle budget per handshake phase.
    budget: u32,
    /// Cycles to stall `out_ready` before taking each response.
    stall: u32,
}

impl<'a> Driver<'a> {
    /// Creates a driver positioned at reset.
    pub fn new(design: &'a Design) -> Self {
        Driver {
            design,
            sim: Sim::new(&design.ctx, &design.ts),
            budget: 64,
            stall: 0,
        }
    }

    /// Sets the number of cycles `out_ready` is held low before each
    /// response is taken (exercises back-pressure paths).
    pub fn with_stall(mut self, stall: u32) -> Self {
        self.stall = stall;
        self
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// Runs one transaction to completion: offers the payload until
    /// accepted, waits for the response (stalling it if configured), and
    /// returns the response payload fields.
    pub fn txn(&mut self, payload: &[u128]) -> Result<Vec<u128>, DriveError> {
        let iface = &self.design.iface;
        assert_eq!(
            payload.len(),
            iface.in_payload.len(),
            "payload arity mismatch"
        );
        let mut inp: HashMap<gqed_ir::TermId, u128> = HashMap::new();
        inp.insert(iface.in_valid, 1);
        inp.insert(iface.out_ready, 0);
        for (&p, &v) in iface.in_payload.iter().zip(payload) {
            inp.insert(p, v);
        }
        // Offer until accepted.
        let mut accepted = false;
        for _ in 0..self.budget {
            let ready = self.sim.peek(&inp, iface.in_ready) == 1;
            self.sim.step(&inp);
            if ready {
                accepted = true;
                break;
            }
        }
        if !accepted {
            return Err(DriveError::NotAccepted);
        }
        inp.insert(iface.in_valid, 0);
        // Wait for the response; stall it for the configured cycles.
        let mut stalled = 0;
        for _ in 0..self.budget {
            if self.sim.peek(&inp, iface.out_valid) == 1 {
                if stalled < self.stall {
                    stalled += 1;
                    self.sim.step(&inp);
                    continue;
                }
                inp.insert(iface.out_ready, 1);
                let res = iface
                    .out_payload
                    .iter()
                    .map(|&t| self.sim.peek(&inp, t))
                    .collect();
                self.sim.step(&inp); // deliver
                return Ok(res);
            }
            self.sim.step(&inp);
        }
        Err(DriveError::NoResponse)
    }

    /// Runs idle cycles (no request offered, environment responsive).
    pub fn idle(&mut self, cycles: u32) {
        let iface = &self.design.iface;
        let mut inp: HashMap<gqed_ir::TermId, u128> = HashMap::new();
        inp.insert(iface.in_valid, 0);
        inp.insert(iface.out_ready, 1);
        for &p in &iface.in_payload {
            inp.insert(p, 0);
        }
        for _ in 0..cycles {
            self.sim.step(&inp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::accum;

    #[test]
    fn drives_transactions_in_order() {
        let d = accum::build(&accum::Params::default(), None);
        let mut drv = Driver::new(&d);
        assert_eq!(drv.txn(&[accum::OP_ACC, 5]).unwrap(), vec![5]);
        assert_eq!(drv.txn(&[accum::OP_ACC, 7]).unwrap(), vec![12]);
        drv.idle(3);
        assert_eq!(drv.txn(&[accum::OP_GET, 0]).unwrap(), vec![12]);
    }

    #[test]
    fn stalling_does_not_change_clean_design_results() {
        let d = accum::build(&accum::Params::default(), None);
        let mut fast = Driver::new(&d);
        let mut slow = Driver::new(&d).with_stall(5);
        for (op, data) in [(accum::OP_ACC, 9), (accum::OP_GET, 0), (accum::OP_CLR, 0)] {
            assert_eq!(
                fast.txn(&[op, data]).unwrap(),
                slow.txn(&[op, data]).unwrap()
            );
        }
    }

    #[test]
    fn hang_bug_reports_no_response() {
        let d = accum::build(&accum::Params::default(), Some("hang-on-zero-data"));
        let mut drv = Driver::new(&d);
        assert_eq!(drv.txn(&[accum::OP_ACC, 0]), Err(DriveError::NoResponse));
    }
}
