//! The hardware-accelerator design library: the designs-under-verification
//! of the G-QED evaluation.
//!
//! The paper evaluates G-QED on a suite of accelerators plus an industrial
//! IP. Neither is available, so this crate provides word-level models with
//! the same transactional discipline — a ready/valid request port and a
//! ready/valid, in-order response port ([`iface::HaInterface`]) — split
//! into two families:
//!
//! * **non-interfering** ([`designs::vecadd`], [`designs::alu`],
//!   [`designs::relu`], [`designs::matvec`]): the response to a request is
//!   a function of that request's payload alone — A-QED's setting;
//! * **interfering** ([`designs::accum`], [`designs::crc32`],
//!   [`designs::kvstore`], [`designs::dma`], [`designs::fir`],
//!   [`designs::histogram`], [`designs::movavg`]): responses depend on
//!   architectural state
//!   accumulated from earlier requests — the setting that requires G-QED.
//!   [`designs::dma`] is the stand-in for the paper's industrial case
//!   study (a configuration-driven transfer engine).
//!
//! Every design ships a **bug catalogue** ([`iface::BugInfo`]): injectable
//! RTL-level bugs with a declared bug class and expected detectors, the
//! ground truth for the bug-detection tables. Bugs are injected at build
//! time: `build(&params, Some("bug-id"))` returns the buggy version.
//! Designs also carry *conventional assertions* — the handwritten,
//! design-specific properties a traditional verification flow would use —
//! as the baseline the paper compares against.

#![warn(missing_docs)]
pub mod catalog;
pub mod designs;
pub mod driver;
pub mod iface;
pub mod mutation;
pub mod skeleton;

pub use catalog::{all_designs, DesignEntry};
pub use driver::{DriveError, Driver};
pub use iface::{BugClass, BugInfo, Design, DesignMeta, Detectors, HaInterface};
pub use mutation::{FlowDetectability, Mutant, MutationClass};
pub use skeleton::TxnControl;
