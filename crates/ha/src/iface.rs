//! Transactional interface and design-package types.
//!
//! All accelerators speak the same protocol, the one the A-QED/G-QED
//! methodology assumes:
//!
//! * a request is **accepted** in a cycle where `in_valid && in_ready`;
//! * a response is **delivered** in a cycle where `out_valid && out_ready`;
//! * responses are in order: the *k*-th delivery answers the *k*-th
//!   acceptance;
//! * `in_valid` and the request payload are driven by the environment;
//!   `out_ready` (back-pressure) is driven by the environment.
//!
//! A [`Design`] packages the transition system, its interface, the
//! designer-identified *architectural state projection* (the only manual
//! input G-QED needs beyond the interface), the conventional-flow
//! assertions used as the baseline, and the bug catalogue.

use gqed_ir::{Bad, Context, TermId, TransitionSystem};

/// The ready/valid transactional interface of an accelerator.
///
/// `in_valid`, the payload inputs and `out_ready` are primary inputs of
/// the transition system; `in_ready`, `out_valid` and the output payload
/// are terms over its state.
#[derive(Clone, Debug)]
pub struct HaInterface {
    /// Environment asserts a request this cycle (primary input, width 1).
    pub in_valid: TermId,
    /// Design is willing to accept this cycle (width-1 term).
    pub in_ready: TermId,
    /// Request payload fields (primary inputs), in a fixed order.
    pub in_payload: Vec<TermId>,
    /// Design presents a response this cycle (width-1 term).
    pub out_valid: TermId,
    /// Environment accepts the response this cycle (primary input, width 1).
    pub out_ready: TermId,
    /// Response payload fields (terms), in a fixed order.
    pub out_payload: Vec<TermId>,
}

impl HaInterface {
    /// Total request payload width in bits.
    pub fn in_width(&self, ctx: &Context) -> u32 {
        self.in_payload.iter().map(|&t| ctx.width(t)).sum()
    }

    /// Total response payload width in bits.
    pub fn out_width(&self, ctx: &Context) -> u32 {
        self.out_payload.iter().map(|&t| ctx.width(t)).sum()
    }
}

/// How a bug is expected to be detected — the ground truth for the
/// bug-detection tables (T2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detectors {
    /// G-QED (TLD + FC-G + RB with the architectural-state projection).
    pub gqed: bool,
    /// Plain A-QED (FC with input-equality only + RB). On interfering
    /// designs A-QED is inapplicable (false alarms) — see
    /// [`DesignMeta::interfering`].
    pub aqed: bool,
    /// The design's handwritten conventional assertions.
    pub conventional: bool,
}

/// Classification of catalogued bugs, following the taxonomy implied by
/// the QED line of papers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BugClass {
    /// Response depends on schedule/back-pressure/timing rather than the
    /// architectural input sequence (the bugs that "escape traditional
    /// flows" per the abstract).
    ContextDependent,
    /// Micro-architectural state leaks across transaction boundaries.
    StateLeak,
    /// State (or result) registers used before initialization.
    Uninitialized,
    /// The design can drop, duplicate or stall a transaction (caught by
    /// the response-bound or ordering checks).
    HandshakeProtocol,
    /// A deterministic functional error — consistent across contexts, and
    /// therefore *outside* the self-consistency bug class (detectable only
    /// with design-specific properties). Included to measure the boundary
    /// of the technique honestly.
    ConsistentFunctional,
}

/// A catalogued injectable bug.
#[derive(Clone, Debug)]
pub struct BugInfo {
    /// Stable identifier, passed to `build(.., Some(id))`.
    pub id: &'static str,
    /// One-line description of the defect.
    pub description: &'static str,
    /// Bug class.
    pub class: BugClass,
    /// Which flows are expected to detect it.
    pub expected: Detectors,
    /// Minimum number of *transactions* a witness needs (drives the
    /// detection-bound study, F3).
    pub min_transactions: u32,
}

/// Static design metadata.
#[derive(Clone, Debug)]
pub struct DesignMeta {
    /// Design name (stable, used in tables).
    pub name: &'static str,
    /// Whether responses may depend on earlier transactions.
    pub interfering: bool,
    /// One-line functional description.
    pub description: &'static str,
    /// Nominal latency in cycles from acceptance to response validity
    /// (used to pick the response-bound parameter).
    pub latency: u32,
    /// Recommended BMC bound (cycles) for the evaluation runs.
    pub recommended_bound: u32,
}

/// A packaged design-under-verification.
#[derive(Clone, Debug)]
pub struct Design {
    /// The term context owning all of the design's terms. Checkers extend
    /// it with monitor logic.
    pub ctx: Context,
    /// The design's transition system.
    pub ts: TransitionSystem,
    /// Transactional interface.
    pub iface: HaInterface,
    /// Architectural-state projection: terms over the current state that
    /// G-QED's generalized functional-consistency check compares. For a
    /// non-interfering design this is empty (A-QED's setting).
    pub arch_state: Vec<TermId>,
    /// Handwritten design-specific assertions (the conventional baseline),
    /// kept separate from `ts.bads` so QED checks don't see them.
    pub conventional: Vec<Bad>,
    /// Static metadata.
    pub meta: DesignMeta,
    /// Identifier of the injected bug, if any.
    pub injected_bug: Option<&'static str>,
}

impl Design {
    /// Whether this build carries an injected bug.
    pub fn is_buggy(&self) -> bool {
        self.injected_bug.is_some()
    }
}

/// Resolves a bug id within a catalogue; panics with the list of valid ids
/// when unknown (bug ids are compile-time constants in callers).
pub fn resolve_bug(bugs: &[BugInfo], id: &str) -> &'static str {
    for b in bugs {
        if b.id == id {
            return b.id;
        }
    }
    let valid: Vec<&str> = bugs.iter().map(|b| b.id).collect();
    panic!("unknown bug id '{id}'; valid ids: {valid:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_widths_sum() {
        let mut ctx = Context::new();
        let iv = ctx.input("in_valid", 1);
        let or = ctx.input("out_ready", 1);
        let a = ctx.input("a", 8);
        let b = ctx.input("b", 4);
        let t = ctx.tru();
        let iface = HaInterface {
            in_valid: iv,
            in_ready: t,
            in_payload: vec![a, b],
            out_valid: t,
            out_ready: or,
            out_payload: vec![a],
        };
        assert_eq!(iface.in_width(&ctx), 12);
        assert_eq!(iface.out_width(&ctx), 8);
    }

    #[test]
    #[should_panic(expected = "unknown bug id")]
    fn resolve_bug_panics_on_unknown() {
        let bugs = [BugInfo {
            id: "a",
            description: "",
            class: BugClass::ContextDependent,
            expected: Detectors {
                gqed: true,
                aqed: false,
                conventional: false,
            },
            min_transactions: 1,
        }];
        let _ = resolve_bug(&bugs, "b");
    }
}
