//! Counterexample traces.

use gqed_ir::vcd::{Vcd, VcdSignal};
use gqed_ir::{Context, Sim, TermId, TransitionSystem};
use std::collections::HashMap;

/// A finite execution witnessing a `bad` property violation.
///
/// The trace pins down everything the design's behavior depends on: the
/// value of every primary input at every frame, and the initial value of
/// every state whose reset value is nondeterministic. Frame `len - 1` is
/// the cycle at which the property fires.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Input valuation per frame, keyed by input term.
    pub frames: Vec<HashMap<TermId, u128>>,
    /// Initial values of states (only meaningful for states without an
    /// `init` expression; initialized states replay from their reset
    /// value regardless).
    pub initial_states: HashMap<TermId, u128>,
    /// Index of the violated `bad` property in the system's `bads` list.
    pub bad_index: usize,
    /// Name of the violated property.
    pub bad_name: String,
}

impl Trace {
    /// Number of frames (cycles) in the trace; the violation occurs in the
    /// last one.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Renders the trace as a VCD waveform of the system's inputs and
    /// named outputs, by replaying it on the concrete simulator.
    pub fn to_vcd(&self, ctx: &Context, ts: &TransitionSystem) -> Vcd {
        let mut vcd = Vcd::new(&ts.name, 1);
        for &i in &ts.inputs {
            vcd.add_signal(VcdSignal {
                name: ctx.var_name(i).unwrap_or("input").to_string(),
                width: ctx.width(i),
            });
        }
        for (name, t) in &ts.outputs {
            vcd.add_signal(VcdSignal {
                name: name.clone(),
                width: ctx.width(*t),
            });
        }
        let mut sim = Sim::new(ctx, ts);
        for (&st, &v) in &self.initial_states {
            sim = sim.with_initial(st, v);
        }
        for frame in &self.frames {
            let mut row: Vec<u128> = ts
                .inputs
                .iter()
                .map(|i| frame.get(i).copied().unwrap_or(0))
                .collect();
            row.extend(ts.outputs.iter().map(|(_, t)| sim.peek(frame, *t)));
            vcd.add_cycle(&row);
            sim.step(frame);
        }
        vcd
    }

    /// Renders the trace in the BTOR2 *witness* format, for consumption by
    /// btor2 tooling alongside [`gqed_ir::to_btor2`]'s model export.
    ///
    /// Conventions: the single `bad` is reported as `b{bad_index}`; frame
    /// `#0` lists initial values of uninitialized states (indexed by their
    /// position in `ts.states`), and each `@f` frame lists every input
    /// (indexed by its position in `ts.inputs`).
    pub fn to_btor2_witness(&self, ctx: &Context, ts: &TransitionSystem) -> String {
        use std::fmt::Write as _;
        let bin = |v: u128, w: u32| -> String {
            (0..w)
                .rev()
                .map(|b| if v >> b & 1 != 0 { '1' } else { '0' })
                .collect()
        };
        let mut out = String::new();
        let _ = writeln!(out, "sat");
        let _ = writeln!(out, "b{}", self.bad_index);
        let _ = writeln!(out, "#0");
        for (i, s) in ts.states.iter().enumerate() {
            if s.init.is_none() {
                let v = self.initial_states.get(&s.term).copied().unwrap_or(0);
                let w = ctx.width(s.term);
                let name = ctx.var_name(s.term).unwrap_or("state");
                let _ = writeln!(out, "{i} {} {name}#0", bin(v, w));
            }
        }
        for (f, frame) in self.frames.iter().enumerate() {
            let _ = writeln!(out, "@{f}");
            for (i, &inp) in ts.inputs.iter().enumerate() {
                let v = frame.get(&inp).copied().unwrap_or(0);
                let w = ctx.width(inp);
                let name = ctx.var_name(inp).unwrap_or("input");
                let _ = writeln!(out, "{i} {} {name}@{f}", bin(v, w));
            }
        }
        let _ = writeln!(out, ".");
        out
    }

    /// Renders a human-readable tabulation of the trace: one row per
    /// cycle, one column per input.
    pub fn pretty(&self, ctx: &Context, ts: &TransitionSystem) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "counterexample to '{}' ({} cycles)",
            self.bad_name,
            self.len()
        );
        if !self.initial_states.is_empty() {
            let mut inits: Vec<(&str, u128)> = self
                .initial_states
                .iter()
                .map(|(&t, &v)| (ctx.var_name(t).unwrap_or("?"), v))
                .collect();
            inits.sort();
            let _ = write!(out, "  initial:");
            for (n, v) in inits {
                let _ = write!(out, " {n}={v:#x}");
            }
            let _ = writeln!(out);
        }
        let names: Vec<&str> = ts
            .inputs
            .iter()
            .map(|&i| ctx.var_name(i).unwrap_or("?"))
            .collect();
        let _ = write!(out, "  cycle |");
        for n in &names {
            let _ = write!(out, " {n:>8}");
        }
        let _ = writeln!(out);
        for (f, frame) in self.frames.iter().enumerate() {
            let _ = write!(out, "  {f:>5} |");
            for &i in &ts.inputs {
                let v = frame.get(&i).copied().unwrap_or(0);
                let _ = write!(out, " {v:>8x}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_vcd_replays_outputs() {
        let mut ctx = Context::new();
        let en = ctx.input("en", 1);
        let cnt = ctx.state("cnt", 8);
        let inc = ctx.inc(cnt);
        let next = ctx.ite(en, inc, cnt);
        let zero = ctx.zero(8);
        let mut ts = TransitionSystem::new("counter");
        ts.inputs.push(en);
        ts.add_state(cnt, Some(zero), next);
        ts.outputs.push(("cnt".into(), cnt));
        let mut f = HashMap::new();
        f.insert(en, 1u128);
        let trace = Trace {
            frames: vec![f.clone(), f.clone(), f],
            initial_states: HashMap::new(),
            bad_index: 0,
            bad_name: "x".into(),
        };
        let vcd = trace.to_vcd(&ctx, &ts).render();
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 8"));
        assert!(vcd.contains("b00000001")); // cnt reaches 1
    }

    #[test]
    fn btor2_witness_shape() {
        let mut ctx = Context::new();
        let en = ctx.input("en", 1);
        let x = ctx.state("x", 4);
        let mut ts = TransitionSystem::new("w");
        ts.inputs.push(en);
        ts.add_state(x, None, x);
        let mut f = HashMap::new();
        f.insert(en, 1u128);
        let mut init = HashMap::new();
        init.insert(x, 0b1010u128);
        let trace = Trace {
            frames: vec![f.clone(), f],
            initial_states: init,
            bad_index: 2,
            bad_name: "p".into(),
        };
        let w = trace.to_btor2_witness(&ctx, &ts);
        assert!(w.starts_with(
            "sat
b2
#0
"
        ));
        assert!(w.contains("0 1010 x#0"));
        assert!(w.contains(
            "@0
0 1 en@0"
        ));
        assert!(w.contains(
            "@1
0 1 en@1"
        ));
        assert!(w.trim_end().ends_with('.'));
    }

    #[test]
    fn pretty_renders_all_frames() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 8);
        let mut ts = TransitionSystem::new("t");
        ts.inputs.push(a);
        let mut f0 = HashMap::new();
        f0.insert(a, 0x12u128);
        let mut f1 = HashMap::new();
        f1.insert(a, 0x34u128);
        let trace = Trace {
            frames: vec![f0, f1],
            initial_states: HashMap::new(),
            bad_index: 0,
            bad_name: "prop".into(),
        };
        let s = trace.pretty(&ctx, &ts);
        assert!(s.contains("prop"));
        assert!(s.contains("12"));
        assert!(s.contains("34"));
        assert_eq!(trace.len(), 2);
    }
}
