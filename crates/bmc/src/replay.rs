//! Concrete replay of counterexample traces.
//!
//! Every trace the BMC engine reports is re-executed on the word-level
//! simulator before being handed to the user. A trace is *confirmed* when
//! (a) every environment constraint holds at every cycle, and (b) the named
//! `bad` property fires at the final cycle. This implements, in running
//! code, the paper's soundness claim: a G-QED counterexample is a concrete
//! witness of inconsistent behavior, never an encoding artifact.

use crate::trace::Trace;
use gqed_ir::{Context, Sim, TransitionSystem};

/// Why a trace failed to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// An environment constraint was violated at the given cycle.
    ConstraintViolated {
        /// Cycle at which the violation occurred.
        cycle: usize,
        /// Index into the system's constraint list.
        constraint: usize,
    },
    /// The expected `bad` property did not fire at the final cycle.
    BadDidNotFire {
        /// Name of the property that was expected to fire.
        name: String,
    },
    /// The trace has no frames.
    EmptyTrace,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ConstraintViolated { cycle, constraint } => write!(
                f,
                "environment constraint #{constraint} violated at cycle {cycle}"
            ),
            ReplayError::BadDidNotFire { name } => {
                write!(f, "property '{name}' did not fire at the final cycle")
            }
            ReplayError::EmptyTrace => write!(f, "trace has no frames"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays `trace` on the concrete simulator and confirms it witnesses the
/// claimed violation.
pub fn replay(ctx: &Context, ts: &TransitionSystem, trace: &Trace) -> Result<(), ReplayError> {
    if trace.frames.is_empty() {
        return Err(ReplayError::EmptyTrace);
    }
    let mut sim = Sim::new(ctx, ts);
    for (&state, &v) in &trace.initial_states {
        sim = sim.with_initial(state, v);
    }
    let last = trace.frames.len() - 1;
    for (cycle, inputs) in trace.frames.iter().enumerate() {
        let r = sim.step(inputs);
        if let Some(&c) = r.violated_constraints.first() {
            return Err(ReplayError::ConstraintViolated {
                cycle,
                constraint: c,
            });
        }
        if cycle == last && !r.fired_bads.contains(&trace.bad_index) {
            return Err(ReplayError::BadDidNotFire {
                name: trace.bad_name.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqed_ir::Context;
    use std::collections::HashMap;

    fn counter() -> (Context, TransitionSystem) {
        let mut ctx = Context::new();
        let en = ctx.input("en", 1);
        let cnt = ctx.state("cnt", 8);
        let inc = ctx.inc(cnt);
        let next = ctx.ite(en, inc, cnt);
        let zero = ctx.zero(8);
        let c2 = ctx.constant(2, 8);
        let hit = ctx.eq(cnt, c2);
        let mut ts = TransitionSystem::new("counter");
        ts.inputs.push(en);
        ts.add_state(cnt, Some(zero), next);
        ts.add_bad("reach2", hit);
        (ctx, ts)
    }

    fn frames_en(values: &[u128], en: gqed_ir::TermId) -> Vec<HashMap<gqed_ir::TermId, u128>> {
        values
            .iter()
            .map(|&v| {
                let mut m = HashMap::new();
                m.insert(en, v);
                m
            })
            .collect()
    }

    #[test]
    fn valid_trace_replays() {
        let (ctx, ts) = counter();
        let trace = Trace {
            frames: frames_en(&[1, 1, 1], ts.inputs[0]),
            initial_states: HashMap::new(),
            bad_index: 0,
            bad_name: "reach2".into(),
        };
        assert_eq!(replay(&ctx, &ts, &trace), Ok(()));
    }

    #[test]
    fn wrong_length_trace_rejected() {
        let (ctx, ts) = counter();
        let trace = Trace {
            frames: frames_en(&[1, 1], ts.inputs[0]), // counter reaches 2 only after 3 frames
            initial_states: HashMap::new(),
            bad_index: 0,
            bad_name: "reach2".into(),
        };
        assert!(matches!(
            replay(&ctx, &ts, &trace),
            Err(ReplayError::BadDidNotFire { .. })
        ));
    }

    #[test]
    fn constraint_violation_detected() {
        let (mut ctx, mut ts) = counter();
        let en = ts.inputs[0];
        let nen = ctx.not(en);
        ts.constraints.push(nen); // environment: en must stay low
        let trace = Trace {
            frames: frames_en(&[0, 1, 0], en),
            initial_states: HashMap::new(),
            bad_index: 0,
            bad_name: "reach2".into(),
        };
        assert_eq!(
            replay(&ctx, &ts, &trace),
            Err(ReplayError::ConstraintViolated {
                cycle: 1,
                constraint: 0
            })
        );
    }

    #[test]
    fn empty_trace_rejected() {
        let (ctx, ts) = counter();
        let trace = Trace {
            frames: vec![],
            initial_states: HashMap::new(),
            bad_index: 0,
            bad_name: "reach2".into(),
        };
        assert_eq!(replay(&ctx, &ts, &trace), Err(ReplayError::EmptyTrace));
    }
}
