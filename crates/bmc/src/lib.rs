//! SAT-based bounded model checking for word-level transition systems.
//!
//! This crate is the proof engine of the G-QED flow (the role a commercial
//! model checker plays in the paper):
//!
//! * [`engine`] — the incremental BMC engine: it unrolls a
//!   [`TransitionSystem`](gqed_ir::TransitionSystem) frame by frame into a
//!   shared AIG, Tseitin-encodes new cones into one persistent SAT solver,
//!   activates per-frame environment constraints through assumption
//!   literals, and checks `bad` properties at increasing depths;
//! * [`trace`] — counterexample traces: per-frame input valuations plus
//!   initial values of nondeterministic states;
//! * [`replay`] — independent confirmation of every counterexample on the
//!   concrete simulator (the engine refuses to return a trace that does not
//!   replay — a hard soundness guard against bit-blasting or encoding
//!   bugs);
//! * [`kind`] — a k-induction prover layered on the same unroller, used to
//!   obtain unbounded proofs for the bug-free designs in the evaluation.

#![warn(missing_docs)]
pub mod engine;
pub mod equiv;
pub mod kind;
pub mod replay;
pub mod trace;

pub use engine::{BmcEngine, BmcLimits, BmcResult, BmcStats, BmcStatus, StopReason};
pub use equiv::{prove_equivalent, EquivResult};
pub use kind::{prove_k_induction, prove_k_induction_limited, ProofResult};
pub use replay::{replay, ReplayError};
pub use trace::Trace;
