//! The incremental bounded model checker.
//!
//! One engine instance owns one growing unrolling: a shared AIG, a
//! persistent Tseitin encoding and one incremental SAT solver. Extending
//! the bound adds the new frame's logic; nothing is re-encoded. Environment
//! constraints are attached to per-frame *activation literals* so that a
//! query at frame `k` assumes exactly the constraints of frames `0..=k` —
//! later frames (if already built) cannot prune behavior, which would be
//! unsound for BMC.

use crate::replay::replay;
use crate::trace::Trace;
use gqed_ir::{BitBlaster, Context, Model, TermId, TransitionSystem};
use gqed_logic::aig::{Aig, AigLit};
use gqed_logic::{Cnf, Tseitin};
use gqed_sat::{SolveOutcome, Solver, SolverStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a bounded check.
#[derive(Clone, Debug)]
pub enum BmcResult {
    /// A violation was found (and confirmed by concrete replay).
    Violated(Trace),
    /// No `bad` property fires within the given bound (inclusive).
    NoneUpTo(u32),
}

impl BmcResult {
    /// The trace, if the result is a violation.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            BmcResult::Violated(t) => Some(t),
            BmcResult::NoneUpTo(_) => None,
        }
    }

    /// Whether a violation was found.
    pub fn is_violated(&self) -> bool {
        matches!(self, BmcResult::Violated(_))
    }
}

/// Why a limited check stopped without a verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The per-query conflict budget ran out.
    BudgetExhausted,
    /// The cooperative cancellation flag was raised.
    Interrupted,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The solver's clause arena exceeded the configured byte budget and
    /// emergency reclamation could not bring it back under.
    MemoryLimit,
}

impl StopReason {
    /// The stop reason of an inconclusive solver outcome, `None` for
    /// verdicts.
    pub fn from_outcome(outcome: SolveOutcome) -> Option<StopReason> {
        match outcome {
            SolveOutcome::BudgetExhausted => Some(StopReason::BudgetExhausted),
            SolveOutcome::Interrupted => Some(StopReason::Interrupted),
            SolveOutcome::DeadlineExpired => Some(StopReason::DeadlineExpired),
            SolveOutcome::MemoryLimit => Some(StopReason::MemoryLimit),
            SolveOutcome::Sat | SolveOutcome::Unsat => None,
        }
    }
}

/// Outcome of a limited bounded check ([`BmcEngine::try_check_up_to`]).
#[derive(Clone, Debug)]
pub enum BmcStatus {
    /// A violation was found (and confirmed by concrete replay).
    Violated(Trace),
    /// No `bad` property fires within the given bound (inclusive).
    NoneUpTo(u32),
    /// The check stopped early without a verdict.
    Stopped {
        /// The frame being examined when the check stopped. Frames
        /// `0..frame` are fully checked and clean.
        frame: u32,
        /// Why the check stopped.
        reason: StopReason,
    },
}

impl BmcStatus {
    /// Whether a violation was found.
    pub fn is_violated(&self) -> bool {
        matches!(self, BmcStatus::Violated(_))
    }
}

/// Resource limits applied to each solver query of a limited check.
/// `Default` means unlimited: no budget, no deadline, no interrupt.
#[derive(Clone, Default)]
pub struct BmcLimits {
    /// Conflict budget per solver query.
    pub budget: Option<u64>,
    /// Wall-clock deadline for the whole check.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, shared with whoever may want to stop
    /// this check (e.g. a faster racing engine).
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Clause-arena byte budget for the solver; exceeding it (after the
    /// solver's emergency reclamation) stops the check with
    /// [`StopReason::MemoryLimit`].
    pub mem_limit: Option<usize>,
}

impl BmcLimits {
    /// Polls the wall-clock signals (interrupt and deadline, not budget) —
    /// used between frames so a raised flag stops the check before the
    /// next frame is encoded, not just at the next solver call.
    pub fn poll(&self) -> Option<StopReason> {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return Some(StopReason::Interrupted);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::DeadlineExpired);
            }
        }
        None
    }
}

/// Size and effort metrics of an engine instance (reported in the
/// evaluation tables).
#[derive(Clone, Copy, Debug)]
pub struct BmcStats {
    /// Number of frames currently unrolled.
    pub frames: u32,
    /// AND gates in the shared AIG.
    pub aig_ands: usize,
    /// CNF variables allocated.
    pub cnf_vars: u32,
    /// CNF clauses added.
    pub cnf_clauses: usize,
    /// Cumulative wall-clock time spent inside this engine's check calls
    /// (encoding + solving + trace extraction).
    pub wall: Duration,
    /// Cumulative number of per-frame queries solved by
    /// [`BmcEngine::try_check_up_to`] over this engine's lifetime. A warm
    /// resume does not re-query clean frames, so this counts real solving
    /// work — the deterministic "frames solved from zero" metric the
    /// bench regression gate compares cold vs. warm.
    pub frame_queries: u64,
    /// SAT solver search statistics.
    pub solver: SolverStats,
}

struct Frame {
    /// Bits of every term evaluated in this frame (states seeded).
    blaster: BitBlaster,
    /// AIG input bits allocated for each TS input in this frame.
    input_bits: HashMap<TermId, Vec<AigLit>>,
    /// Activation literal (DIMACS) for this frame's constraints.
    constraint_act: Option<i32>,
}

/// How an engine holds its model: borrowed from the caller (the classic
/// construction) or shared ownership of a prebuilt [`Model`]. The enum
/// stays private; the accessors [`mctx`]/[`mts`] are free functions over
/// `&ModelRef` so the borrow checker sees field-disjoint borrows of the
/// engine (a method taking `&self` would conflict with `&mut self.aig` on
/// the blasting paths).
enum ModelRef<'a> {
    Borrowed {
        ctx: &'a Context,
        ts: &'a TransitionSystem,
    },
    Shared(Arc<Model>),
}

fn mctx<'b>(m: &'b ModelRef<'_>) -> &'b Context {
    match m {
        ModelRef::Borrowed { ctx, .. } => ctx,
        ModelRef::Shared(model) => &model.ctx,
    }
}

fn mts<'b>(m: &'b ModelRef<'_>) -> &'b TransitionSystem {
    match m {
        ModelRef::Borrowed { ts, .. } => ts,
        ModelRef::Shared(model) => &model.ts,
    }
}

/// Incremental BMC engine for a single `(Context, TransitionSystem)` pair.
///
/// The context and system are borrowed for the engine's lifetime
/// ([`BmcEngine::new`]) or owned via a shared [`Model`]
/// ([`BmcEngine::for_model`], which yields a `'static` engine that can
/// live inside a resumable session). Build the full model (including any
/// QED wrapper logic) before constructing the engine.
pub struct BmcEngine<'a> {
    model: ModelRef<'a>,
    aig: Aig,
    cnf: Cnf,
    solver: Solver,
    tseitin: Tseitin,
    frames: Vec<Frame>,
    /// AIG input bits of nondeterministically initialized states.
    init_state_bits: HashMap<TermId, Vec<AigLit>>,
    /// Cached CNF literal of each (bad, frame) pair already encoded.
    bad_lits: HashMap<(usize, u32), i32>,
    /// Number of CNF clauses already mirrored into the solver.
    synced_clauses: usize,
    /// Wall-clock time accumulated across check calls.
    wall: Duration,
    /// Frames `0..verified_clean` are proven clean (no bad fires there);
    /// [`BmcEngine::try_check_up_to`] resumes from here, making a re-run
    /// after an early stop a warm start rather than a re-solve.
    verified_clean: u32,
    /// Reusable assumption buffer for solver queries (constraint
    /// activation literals + the query literal), to avoid a fresh `Vec`
    /// per query.
    assumption_buf: Vec<i32>,
    /// Per-frame queries solved by `try_check_up_to` (see [`BmcStats`]).
    frame_queries: u64,
}

impl<'a> BmcEngine<'a> {
    /// Creates an engine with no frames unrolled yet.
    pub fn new(ctx: &'a Context, ts: &'a TransitionSystem) -> Self {
        Self::with_model(ModelRef::Borrowed { ctx, ts })
    }

    fn with_model(model: ModelRef<'a>) -> Self {
        BmcEngine {
            model,
            aig: Aig::new(),
            cnf: Cnf::new(),
            solver: Solver::new(),
            tseitin: Tseitin::new(),
            frames: Vec::new(),
            init_state_bits: HashMap::new(),
            bad_lits: HashMap::new(),
            synced_clauses: 0,
            wall: Duration::ZERO,
            verified_clean: 0,
            assumption_buf: Vec::new(),
            frame_queries: 0,
        }
    }

    /// Number of leading frames proven clean so far. A later
    /// [`BmcEngine::try_check_up_to`] call starts checking at this frame,
    /// which is what makes re-running after a budget/deadline stop a
    /// resume instead of a restart.
    pub fn verified_clean(&self) -> u32 {
        self.verified_clean
    }

    /// Enables or disables the solver's scheduled inprocessing
    /// (subsumption, bounded variable elimination, vivification) for this
    /// engine's queries. On by default; soundness never depends on the
    /// setting — eliminated variables restore on demand — so this is
    /// purely a performance knob for A/B benchmarking.
    pub fn set_inprocessing(&mut self, on: bool) {
        self.solver.set_simplify(on);
    }

    /// Renders the engine's current CNF (the whole unrolling encoded so
    /// far) in DIMACS format, for cross-checking individual queries with
    /// an external SAT solver. Per-frame constraint activation literals
    /// and `bad` literals are *not* asserted in the dump — append the unit
    /// clauses for the query you want to reproduce (see
    /// [`BmcEngine::stats`] for sizes).
    pub fn to_dimacs(&self) -> String {
        self.cnf.to_dimacs()
    }

    /// Current metrics.
    pub fn stats(&self) -> BmcStats {
        BmcStats {
            frames: self.frames.len() as u32,
            aig_ands: self.aig.num_ands(),
            cnf_vars: self.cnf.num_vars(),
            cnf_clauses: self.cnf.num_clauses(),
            wall: self.wall,
            frame_queries: self.frame_queries,
            solver: self.solver.stats(),
        }
    }

    fn const_bits(v: u128, w: u32) -> Vec<AigLit> {
        (0..w)
            .map(|i| {
                if v >> i & 1 != 0 {
                    AigLit::TRUE
                } else {
                    AigLit::FALSE
                }
            })
            .collect()
    }

    /// Builds frames up to and including `frame`.
    fn extend_to(&mut self, frame: u32) {
        while self.frames.len() <= frame as usize {
            let f = self.frames.len() as u32;
            let mut blaster = BitBlaster::new();
            // Seed state bits.
            if f == 0 {
                for s in &mts(&self.model).states {
                    let w = mctx(&self.model).width(s.term);
                    let bits = match s.init {
                        Some(init) => {
                            let v = gqed_ir::eval_terms(mctx(&self.model), &[init], |t| {
                                panic!(
                                    "init must be constant, found leaf '{}'",
                                    mctx(&self.model).var_name(t).unwrap_or("?")
                                )
                            })[0];
                            Self::const_bits(v, w)
                        }
                        None => {
                            let bits: Vec<AigLit> = (0..w).map(|_| self.aig.input()).collect();
                            self.init_state_bits.insert(s.term, bits.clone());
                            bits
                        }
                    };
                    blaster.seed(mctx(&self.model), s.term, bits);
                }
            } else {
                // Next-state bits computed in the previous frame.
                let prev = self.frames.len() - 1;
                let mut next_bits: Vec<(TermId, Vec<AigLit>)> = Vec::new();
                for s in &mts(&self.model).states {
                    let prev_frame = &mut self.frames[prev];
                    let bits = prev_frame.blaster.blast(
                        mctx(&self.model),
                        &mut self.aig,
                        s.next,
                        &mut leaf_provider(&mut prev_frame.input_bits),
                    );
                    next_bits.push((s.term, bits));
                }
                for (t, bits) in next_bits {
                    blaster.seed(mctx(&self.model), t, bits);
                }
            }
            let mut fr = Frame {
                blaster,
                input_bits: HashMap::new(),
                constraint_act: None,
            };
            // Encode this frame's environment constraints behind one
            // activation literal.
            if !mts(&self.model).constraints.is_empty() {
                let act = self.cnf.fresh_var();
                for &c in &mts(&self.model).constraints {
                    let bits = fr.blaster.blast(
                        mctx(&self.model),
                        &mut self.aig,
                        c,
                        &mut leaf_provider(&mut fr.input_bits),
                    );
                    let lit = self.tseitin.lit(&self.aig, &mut self.cnf, bits[0]);
                    self.cnf.add_clause(&[-act, lit]);
                }
                fr.constraint_act = Some(act);
            }
            self.frames.push(fr);
        }
    }

    /// Encodes `bad` property `bad_index` at `frame`; returns its CNF literal.
    fn encode_bad_at(&mut self, bad_index: usize, frame: u32) -> i32 {
        if let Some(&l) = self.bad_lits.get(&(bad_index, frame)) {
            return l;
        }
        self.extend_to(frame);
        let term = mts(&self.model).bads[bad_index].term;
        let fr = &mut self.frames[frame as usize];
        let bits = fr.blaster.blast(
            mctx(&self.model),
            &mut self.aig,
            term,
            &mut leaf_provider(&mut fr.input_bits),
        );
        let lit = self.tseitin.lit(&self.aig, &mut self.cnf, bits[0]);
        self.bad_lits.insert((bad_index, frame), lit);
        lit
    }

    /// Runs one solver query under the given limits.
    fn solve_query(&mut self, assumptions: &[i32], limits: &BmcLimits) -> SolveOutcome {
        match &limits.interrupt {
            Some(flag) => self.solver.set_interrupt(Arc::clone(flag)),
            None => self.solver.clear_interrupt(),
        }
        match limits.deadline {
            Some(d) => self.solver.set_deadline(d),
            None => self.solver.clear_deadline(),
        }
        match limits.mem_limit {
            Some(m) => self.solver.set_memory_limit(m),
            None => self.solver.clear_memory_limit(),
        }
        self.solver
            .solve_bounded(assumptions, limits.budget.unwrap_or(u64::MAX))
    }

    fn stop_reason(outcome: SolveOutcome) -> StopReason {
        StopReason::from_outcome(outcome).expect("verdicts are handled before stop_reason")
    }

    /// Checks a single `bad` property at exactly `frame`; returns a
    /// replay-confirmed trace if violated there.
    pub fn check_bad_at(&mut self, bad_index: usize, frame: u32) -> Option<Trace> {
        let t0 = Instant::now();
        let r = self
            .check_bad_at_inner(bad_index, frame, &BmcLimits::default())
            .expect("unlimited check cannot stop early");
        self.wall += t0.elapsed();
        r
    }

    /// [`BmcEngine::check_bad_at`] under resource limits: `Err` carries the
    /// reason the query stopped without a verdict.
    pub fn check_bad_at_limited(
        &mut self,
        bad_index: usize,
        frame: u32,
        limits: &BmcLimits,
    ) -> Result<Option<Trace>, StopReason> {
        let t0 = Instant::now();
        let r = self.check_bad_at_inner(bad_index, frame, limits);
        self.wall += t0.elapsed();
        r
    }

    fn check_bad_at_inner(
        &mut self,
        bad_index: usize,
        frame: u32,
        limits: &BmcLimits,
    ) -> Result<Option<Trace>, StopReason> {
        let bad_lit = self.encode_bad_at(bad_index, frame);
        // Constraint clauses added during extension must reach the solver
        // too; encode_bad_at only syncs its own cone, so sync again.
        self.flush_cnf();
        match self.solve_with_constraints(frame, bad_lit, limits) {
            SolveOutcome::Unsat => Ok(None),
            SolveOutcome::Sat => {
                let trace = self.extract_trace(bad_index, frame);
                // Hard soundness guard: every trace must replay concretely.
                replay(mctx(&self.model), mts(&self.model), &trace).unwrap_or_else(|e| {
                    panic!("BMC produced a non-replayable counterexample: {e}")
                });
                Ok(Some(trace))
            }
            stop => Err(Self::stop_reason(stop)),
        }
    }

    /// Mirrors into the solver every CNF variable and clause produced
    /// since the last flush (the Tseitin encoder and constraint encoding
    /// write into `self.cnf` only).
    fn flush_cnf(&mut self) {
        while self.solver.num_vars() < self.cnf.num_vars() {
            let _ = self.solver.new_var();
        }
        let pending: Vec<Vec<i32>> = self
            .cnf
            .clauses()
            .skip(self.synced_clauses)
            .map(|c| c.to_vec())
            .collect();
        self.synced_clauses = self.cnf.num_clauses();
        for c in pending {
            self.solver.add_clause(&c);
        }
    }

    /// Checks *all* `bad` properties at exactly `frame` through a single
    /// disjunction query (one solver call per frame instead of one per
    /// property); returns a replay-confirmed trace for the property that
    /// fired, if any.
    pub fn check_any_bad_at(&mut self, frame: u32) -> Option<Trace> {
        let t0 = Instant::now();
        let r = self
            .check_any_bad_at_inner(frame, &BmcLimits::default())
            .expect("unlimited check cannot stop early");
        self.wall += t0.elapsed();
        r
    }

    /// [`BmcEngine::check_any_bad_at`] under resource limits.
    pub fn check_any_bad_at_limited(
        &mut self,
        frame: u32,
        limits: &BmcLimits,
    ) -> Result<Option<Trace>, StopReason> {
        let t0 = Instant::now();
        let r = self.check_any_bad_at_inner(frame, limits);
        self.wall += t0.elapsed();
        r
    }

    fn check_any_bad_at_inner(
        &mut self,
        frame: u32,
        limits: &BmcLimits,
    ) -> Result<Option<Trace>, StopReason> {
        if mts(&self.model).bads.is_empty() {
            return Ok(None);
        }
        if mts(&self.model).bads.len() == 1 {
            return self.check_bad_at_inner(0, frame, limits);
        }
        // Blast every bad at this frame and OR them in the AIG (sharing
        // their cones), caching the individual bits for identification.
        self.extend_to(frame);
        let mut bad_bits: Vec<AigLit> = Vec::with_capacity(mts(&self.model).bads.len());
        for bad_index in 0..mts(&self.model).bads.len() {
            let term = mts(&self.model).bads[bad_index].term;
            let fr = &mut self.frames[frame as usize];
            let bits = fr.blaster.blast(
                mctx(&self.model),
                &mut self.aig,
                term,
                &mut leaf_provider(&mut fr.input_bits),
            );
            bad_bits.push(bits[0]);
        }
        let any = self.aig.or_all(&bad_bits);
        if any == AigLit::FALSE {
            return Ok(None); // all bads fold to constant false here
        }
        let any_lit = self.tseitin.lit(&self.aig, &mut self.cnf, any);
        self.flush_cnf();
        match self.solve_with_constraints(frame, any_lit, limits) {
            SolveOutcome::Unsat => Ok(None),
            SolveOutcome::Sat => {
                // Identify which property fired in the model.
                let bad_index = bad_bits
                    .iter()
                    .position(|&b| self.bits_value(&[b]) == 1)
                    .expect("disjunction satisfied but no disjunct true");
                let trace = self.extract_trace(bad_index, frame);
                replay(mctx(&self.model), mts(&self.model), &trace).unwrap_or_else(|e| {
                    panic!("BMC produced a non-replayable counterexample: {e}")
                });
                Ok(Some(trace))
            }
            stop => Err(Self::stop_reason(stop)),
        }
    }

    /// Runs one solver query assuming the constraint activation literals
    /// of frames `0..=frame` plus the query literal `extra`, reusing the
    /// engine's assumption buffer instead of building a fresh `Vec` per
    /// query.
    fn solve_with_constraints(
        &mut self,
        frame: u32,
        extra: i32,
        limits: &BmcLimits,
    ) -> SolveOutcome {
        let mut assumptions = std::mem::take(&mut self.assumption_buf);
        assumptions.clear();
        assumptions.extend((0..=frame).filter_map(|f| self.frames[f as usize].constraint_act));
        assumptions.push(extra);
        let out = self.solve_query(&assumptions, limits);
        self.assumption_buf = assumptions;
        out
    }

    /// Checks all `bad` properties at frames `0..=bound`, depth-first by
    /// frame; returns the first (shallowest) confirmed violation.
    pub fn check_up_to(&mut self, bound: u32) -> BmcResult {
        match self.try_check_up_to(bound, &BmcLimits::default()) {
            BmcStatus::Violated(t) => BmcResult::Violated(t),
            BmcStatus::NoneUpTo(b) => BmcResult::NoneUpTo(b),
            BmcStatus::Stopped { .. } => unreachable!("no limits installed"),
        }
    }

    /// [`BmcEngine::check_up_to`] under resource limits. The interrupt
    /// flag and deadline are also polled *between* frames, so a raised
    /// flag stops the check before the next frame is even encoded; frames
    /// `0..frame` of a [`BmcStatus::Stopped`] result are fully checked.
    pub fn try_check_up_to(&mut self, bound: u32, limits: &BmcLimits) -> BmcStatus {
        let t0 = Instant::now();
        let status = self.try_check_up_to_inner(bound, limits);
        self.wall += t0.elapsed();
        status
    }

    fn try_check_up_to_inner(&mut self, bound: u32, limits: &BmcLimits) -> BmcStatus {
        // Frames below `verified_clean` were proven clean by earlier calls
        // on this engine; start where the last run stopped (warm start).
        for frame in self.verified_clean..=bound {
            if let Some(reason) = limits.poll() {
                return BmcStatus::Stopped { frame, reason };
            }
            self.frame_queries += 1;
            match self.check_any_bad_at_inner(frame, limits) {
                Ok(Some(t)) => return BmcStatus::Violated(t),
                Ok(None) => self.verified_clean = frame + 1,
                Err(reason) => return BmcStatus::Stopped { frame, reason },
            }
        }
        BmcStatus::NoneUpTo(bound)
    }

    /// Reads the model value of a vector of AIG literals.
    fn bits_value(&self, bits: &[AigLit]) -> u128 {
        let mut v = 0u128;
        for (i, &b) in bits.iter().enumerate() {
            let bit = if b == AigLit::TRUE {
                true
            } else if b == AigLit::FALSE {
                false
            } else {
                match self.tseitin.existing_var(b) {
                    // Unencoded (outside every solved cone): unconstrained.
                    None => false,
                    Some(l) => self.solver.value(l),
                }
            };
            v |= u128::from(bit) << i;
        }
        v
    }

    fn extract_trace(&self, bad_index: usize, frame: u32) -> Trace {
        let mut frames = Vec::with_capacity(frame as usize + 1);
        for f in 0..=frame {
            let fr = &self.frames[f as usize];
            let mut m = HashMap::new();
            for &inp in &mts(&self.model).inputs {
                let v = match fr.input_bits.get(&inp) {
                    Some(bits) => self.bits_value(bits),
                    None => 0, // input not referenced in this frame's cones
                };
                m.insert(inp, v);
            }
            frames.push(m);
        }
        let initial_states = self
            .init_state_bits
            .iter()
            .map(|(&t, bits)| (t, self.bits_value(bits)))
            .collect();
        Trace {
            frames,
            initial_states,
            bad_index,
            bad_name: mts(&self.model).bads[bad_index].name.clone(),
        }
    }
}

impl BmcEngine<'static> {
    /// Creates an engine that shares ownership of a prebuilt [`Model`].
    /// The engine has no borrowed lifetime, so it can live inside a
    /// long-lived resumable session (e.g. across campaign retries) while
    /// other sessions of the same design share the same model.
    pub fn for_model(model: Arc<Model>) -> Self {
        Self::with_model(ModelRef::Shared(model))
    }
}

/// Leaf provider that allocates fresh AIG inputs for TS inputs and records
/// them; panics on unseeded states (states are always seeded per frame).
fn leaf_provider(
    input_bits: &mut HashMap<TermId, Vec<AigLit>>,
) -> impl FnMut(&mut Aig, TermId, u32) -> Vec<AigLit> + '_ {
    move |aig, t, w| {
        input_bits
            .entry(t)
            .or_insert_with(|| (0..w).map(|_| aig.input()).collect())
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter with enable; bad = (cnt == target).
    fn counter_reaches(target: u128, width: u32) -> (Context, TransitionSystem) {
        let mut ctx = Context::new();
        let en = ctx.input("en", 1);
        let cnt = ctx.state("cnt", width);
        let inc = ctx.inc(cnt);
        let next = ctx.ite(en, inc, cnt);
        let zero = ctx.zero(width);
        let tgt = ctx.constant(target, width);
        let hit = ctx.eq(cnt, tgt);
        let mut ts = TransitionSystem::new("counter");
        ts.inputs.push(en);
        ts.add_state(cnt, Some(zero), next);
        ts.add_bad("reaches_target", hit);
        (ctx, ts)
    }

    #[test]
    fn finds_shallowest_violation() {
        let (ctx, ts) = counter_reaches(3, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        match engine.check_up_to(10) {
            BmcResult::Violated(t) => assert_eq!(t.len(), 4), // cycles 0..3
            BmcResult::NoneUpTo(_) => panic!("expected violation"),
        }
    }

    #[test]
    fn respects_bound() {
        let (ctx, ts) = counter_reaches(9, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        match engine.check_up_to(5) {
            BmcResult::NoneUpTo(b) => assert_eq!(b, 5),
            BmcResult::Violated(_) => panic!("target 9 cannot be hit in 6 cycles"),
        }
        // Deepening the same engine finds it.
        assert!(engine.check_up_to(9).is_violated());
    }

    #[test]
    fn constraints_prune_counterexamples() {
        let (mut ctx, mut ts) = counter_reaches(2, 8);
        // Constrain en = 0: the counter can never move.
        let en = ts.inputs[0];
        let not_en = ctx.not(en);
        ts.constraints.push(not_en);
        let mut engine = BmcEngine::new(&ctx, &ts);
        assert!(!engine.check_up_to(8).is_violated());
    }

    #[test]
    fn nondet_initial_state_found() {
        let mut ctx = Context::new();
        let x = ctx.state("x", 8); // uninitialized
        let next = x;
        let c42 = ctx.constant(42, 8);
        let hit = ctx.eq(x, c42);
        let mut ts = TransitionSystem::new("nondet");
        ts.add_state(x, None, next);
        ts.add_bad("x_is_42", hit);
        let mut engine = BmcEngine::new(&ctx, &ts);
        match engine.check_up_to(0) {
            BmcResult::Violated(t) => {
                assert_eq!(t.initial_states[&x], 42);
            }
            BmcResult::NoneUpTo(_) => panic!("expected violation at frame 0"),
        }
    }

    #[test]
    fn unsatisfiable_bad_never_fires() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 8);
        let cnt = ctx.state("c", 8);
        let next = ctx.add(cnt, a);
        let zero = ctx.zero(8);
        // bad: cnt != cnt  (always false)
        let bad = ctx.ne(cnt, cnt);
        let mut ts = TransitionSystem::new("t");
        ts.inputs.push(a);
        ts.add_state(cnt, Some(zero), next);
        ts.add_bad("never", bad);
        let mut engine = BmcEngine::new(&ctx, &ts);
        assert!(!engine.check_up_to(6).is_violated());
    }

    #[test]
    fn dimacs_dump_matches_reported_sizes() {
        let (ctx, ts) = counter_reaches(5, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        let _ = engine.check_up_to(3);
        let dump = engine.to_dimacs();
        let stats = engine.stats();
        let header = dump.lines().next().unwrap().to_string();
        assert_eq!(
            header,
            format!("p cnf {} {}", stats.cnf_vars, stats.cnf_clauses)
        );
        assert_eq!(
            dump.lines().filter(|l| l.ends_with(" 0")).count(),
            stats.cnf_clauses
        );
    }

    #[test]
    fn stats_grow_with_frames() {
        let (ctx, ts) = counter_reaches(200, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        let _ = engine.check_up_to(2);
        let s2 = engine.stats();
        let _ = engine.check_up_to(6);
        let s6 = engine.stats();
        assert!(s6.frames > s2.frames);
        assert!(s6.cnf_clauses >= s2.cnf_clauses);
        assert!(s6.aig_ands >= s2.aig_ands);
    }

    #[test]
    fn wall_time_accumulates() {
        let (ctx, ts) = counter_reaches(200, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        assert_eq!(engine.stats().wall, Duration::ZERO);
        let _ = engine.check_up_to(4);
        let w4 = engine.stats().wall;
        assert!(w4 > Duration::ZERO);
        let _ = engine.check_up_to(8);
        assert!(engine.stats().wall >= w4);
    }

    #[test]
    fn raised_interrupt_stops_check() {
        let (ctx, ts) = counter_reaches(200, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        let flag = Arc::new(AtomicBool::new(true));
        let limits = BmcLimits {
            interrupt: Some(Arc::clone(&flag)),
            ..BmcLimits::default()
        };
        match engine.try_check_up_to(10, &limits) {
            BmcStatus::Stopped {
                frame: 0,
                reason: StopReason::Interrupted,
            } => {}
            other => panic!("expected immediate interrupt, got {other:?}"),
        }
        // Lowering the flag lets the same engine finish.
        flag.store(false, Ordering::Relaxed);
        assert!(matches!(
            engine.try_check_up_to(10, &limits),
            BmcStatus::NoneUpTo(10)
        ));
    }

    #[test]
    fn expired_deadline_stops_check() {
        let (ctx, ts) = counter_reaches(200, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        let limits = BmcLimits {
            deadline: Some(Instant::now()),
            ..BmcLimits::default()
        };
        match engine.try_check_up_to(10, &limits) {
            BmcStatus::Stopped {
                reason: StopReason::DeadlineExpired,
                ..
            } => {}
            other => panic!("expected deadline stop, got {other:?}"),
        }
    }

    #[test]
    fn limited_check_still_finds_violations() {
        let (ctx, ts) = counter_reaches(3, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        let limits = BmcLimits {
            budget: Some(1_000_000),
            ..BmcLimits::default()
        };
        match engine.try_check_up_to(10, &limits) {
            BmcStatus::Violated(t) => assert_eq!(t.len(), 4),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_resumes_at_stopped_frame() {
        let (ctx, ts) = counter_reaches(200, 8);
        let mut engine = BmcEngine::new(&ctx, &ts);
        assert_eq!(engine.verified_clean(), 0);
        assert!(!engine.check_up_to(4).is_violated());
        assert_eq!(engine.verified_clean(), 5);
        // An expired deadline stops the next run before frame 5 is
        // examined — at the resume point, not at frame 0.
        let limits = BmcLimits {
            deadline: Some(Instant::now()),
            ..BmcLimits::default()
        };
        match engine.try_check_up_to(10, &limits) {
            BmcStatus::Stopped {
                frame: 5,
                reason: StopReason::DeadlineExpired,
            } => {}
            other => panic!("expected stop at frame 5, got {other:?}"),
        }
        // A retry picks up at frame 5; nothing below is re-solved.
        assert!(!engine.check_up_to(10).is_violated());
        assert_eq!(engine.verified_clean(), 11);
        // A bound entirely below the clean prefix is answered instantly.
        assert!(matches!(engine.check_up_to(3), BmcResult::NoneUpTo(3)));
    }

    #[test]
    fn shared_model_engine_matches_borrowed() {
        let (ctx, ts) = counter_reaches(3, 8);
        let model = Arc::new(Model { ctx, ts });
        let mut engine = BmcEngine::for_model(Arc::clone(&model));
        match engine.check_up_to(10) {
            BmcResult::Violated(t) => assert_eq!(t.len(), 4),
            BmcResult::NoneUpTo(_) => panic!("expected violation"),
        }
        // The model is still shared and usable for another engine.
        let mut second = BmcEngine::for_model(model);
        assert!(second.check_up_to(10).is_violated());
    }

    #[test]
    fn multiple_bads_identified_correctly() {
        let mut ctx = Context::new();
        let en = ctx.input("en", 1);
        let cnt = ctx.state("cnt", 4);
        let inc = ctx.inc(cnt);
        let next = ctx.ite(en, inc, cnt);
        let zero = ctx.zero(4);
        let c5 = ctx.constant(5, 4);
        let c2 = ctx.constant(2, 4);
        let at5 = ctx.eq(cnt, c5);
        let at2 = ctx.eq(cnt, c2);
        let mut ts = TransitionSystem::new("two_bads");
        ts.inputs.push(en);
        ts.add_state(cnt, Some(zero), next);
        ts.add_bad("reach5", at5);
        ts.add_bad("reach2", at2);
        let mut engine = BmcEngine::new(&ctx, &ts);
        match engine.check_up_to(10) {
            BmcResult::Violated(t) => {
                assert_eq!(t.bad_name, "reach2"); // shallower target
                assert_eq!(t.len(), 3);
            }
            BmcResult::NoneUpTo(_) => panic!("expected violation"),
        }
    }
}
