//! Combinational equivalence checking of term cones.
//!
//! [`prove_equivalent`] SAT-checks that two equal-width terms compute the
//! same function of their shared leaves (inputs/states are treated as free
//! variables). Used to validate datapath refactorings — e.g. that a
//! design's optimized response expression matches its reference — and as a
//! building block for future A-QED²-style functional decomposition.

use gqed_ir::{BitBlaster, Context, TermId};
use gqed_logic::aig::Aig;
use gqed_logic::{Cnf, Tseitin};
use gqed_sat::{SatResult, Solver};
use std::collections::HashMap;

/// Outcome of an equivalence check.
#[derive(Clone, Debug)]
pub enum EquivResult {
    /// The two terms agree on every assignment of their leaves.
    Equivalent,
    /// A distinguishing assignment (leaf term → value).
    Counterexample(HashMap<TermId, u128>),
}

impl EquivResult {
    /// Whether the terms were proven equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Checks whether `a` and `b` (equal widths) compute the same function of
/// their leaves.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn prove_equivalent(ctx: &Context, a: TermId, b: TermId) -> EquivResult {
    assert_eq!(ctx.width(a), ctx.width(b), "equivalence needs equal widths");
    let mut aig = Aig::new();
    // One blaster for both cones: shared leaves get the same fresh inputs.
    let mut blaster = BitBlaster::new();
    let mut leaf_bits: HashMap<TermId, Vec<gqed_logic::AigLit>> = HashMap::new();
    let mut leaf = |aig: &mut Aig, t: TermId, w: u32| {
        leaf_bits
            .entry(t)
            .or_insert_with(|| (0..w).map(|_| aig.input()).collect())
            .clone()
    };
    let abits = blaster.blast(ctx, &mut aig, a, &mut leaf);
    let bbits = blaster.blast(ctx, &mut aig, b, &mut leaf);
    // Miter: OR of per-bit XORs.
    let diffs: Vec<_> = abits
        .iter()
        .zip(&bbits)
        .map(|(&x, &y)| aig.xor(x, y))
        .collect();
    let miter = aig.or_all(&diffs);
    if miter == gqed_logic::AigLit::FALSE {
        return EquivResult::Equivalent; // structurally identical
    }

    let mut cnf = Cnf::new();
    let mut enc = Tseitin::new();
    let lit = enc.lit(&aig, &mut cnf, miter);
    let mut solver = Solver::new();
    for c in cnf.clauses() {
        solver.add_clause(c);
    }
    solver.add_clause(&[lit]);
    match solver.solve(&[]) {
        SatResult::Unsat => EquivResult::Equivalent,
        SatResult::Sat => {
            let mut assignment = HashMap::new();
            for (t, bits) in &leaf_bits {
                let mut v = 0u128;
                for (i, &bit) in bits.iter().enumerate() {
                    let val = match enc.existing_var(bit) {
                        Some(l) => solver.value(l),
                        None => false, // outside the miter cone: free
                    };
                    v |= u128::from(val) << i;
                }
                assignment.insert(*t, v);
            }
            // Confirm the counterexample concretely.
            let vals =
                gqed_ir::eval_terms(ctx, &[a, b], |t| assignment.get(&t).copied().or(Some(0)));
            assert_ne!(
                vals[0], vals[1],
                "SAT counterexample does not distinguish the terms"
            );
            EquivResult::Counterexample(assignment)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commuted_addition_is_equivalent() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 8);
        let b = ctx.input("b", 8);
        // Defeat hash-consing normalization with extra structure.
        let one = ctx.constant(1, 8);
        let a1 = ctx.add(a, one);
        let lhs = ctx.add(a1, b);
        let b_plus = ctx.add(b, one);
        let rhs0 = ctx.add(b_plus, a);
        assert!(prove_equivalent(&ctx, lhs, rhs0).is_equivalent());
    }

    #[test]
    fn demorgan_holds() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 6);
        let b = ctx.input("b", 6);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        let lhs0 = ctx.and(a, b);
        let lhs = ctx.not(lhs0);
        let rhs = ctx.or(na, nb);
        assert!(prove_equivalent(&ctx, lhs, rhs).is_equivalent());
    }

    #[test]
    fn inequivalent_terms_yield_distinguishing_input() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 8);
        let b = ctx.input("b", 8);
        let add = ctx.add(a, b);
        let sub = ctx.sub(a, b);
        match prove_equivalent(&ctx, add, sub) {
            EquivResult::Counterexample(m) => {
                // b must be nonzero in any distinguishing assignment...
                // (a+b == a-b iff 2b == 0 iff b ∈ {0, 128} for width 8).
                let bv = m.get(&b).copied().unwrap_or(0);
                assert!(bv != 0 && bv != 128);
            }
            EquivResult::Equivalent => panic!("add and sub are not equivalent"),
        }
    }

    #[test]
    fn shift_by_one_equals_doubling() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 8);
        let one = ctx.constant(1, 8);
        let dbl = ctx.add(a, a);
        let shl = ctx.shl(a, one);
        assert!(prove_equivalent(&ctx, dbl, shl).is_equivalent());
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn width_mismatch_rejected() {
        let mut ctx = Context::new();
        let a = ctx.input("a", 8);
        let b = ctx.input("b", 4);
        let _ = prove_equivalent(&ctx, a, b);
    }
}
