//! k-induction: unbounded proofs on top of the bounded unroller.
//!
//! For a `bad` property `P` the classic two-part scheme is used:
//!
//! * **base case** — BMC from the initial states: `P` does not fire within
//!   `k` cycles;
//! * **inductive step** — from an *arbitrary* state, if `P` stays silent
//!   for `k` consecutive cycles (under the environment constraints), it
//!   cannot fire at cycle `k + 1`.
//!
//! Both parts together prove `P` unreachable at every depth. The step is
//! checked without path-uniqueness strengthening, so the prover may return
//! [`ProofResult::Unknown`] on properties that need an invariant — that is
//! reported honestly rather than iterating forever. In the evaluation this
//! is used to certify the bug-free design versions (the "passes G-QED"
//! rows) beyond the BMC bound.

use crate::engine::{BmcEngine, BmcLimits, StopReason};
use crate::trace::Trace;
use gqed_ir::{BitBlaster, Context, TransitionSystem};
use gqed_logic::aig::Aig;
use gqed_logic::{Cnf, Tseitin};
use gqed_sat::{SolveOutcome, Solver};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of a k-induction proof attempt.
#[derive(Clone, Debug)]
pub enum ProofResult {
    /// The property can never fire; proven at induction depth `k`.
    Proven {
        /// Induction depth at which the step became unsatisfiable.
        k: u32,
    },
    /// A concrete, replay-confirmed counterexample from reset.
    Falsified(Trace),
    /// Neither proven nor falsified up to the depth limit.
    Unknown {
        /// The depth limit that was exhausted.
        max_k: u32,
    },
    /// The attempt stopped early under resource limits
    /// ([`prove_k_induction_limited`]).
    Cancelled {
        /// Depth being examined when the attempt stopped; depths `0..k`
        /// completed both their base and step queries.
        k: u32,
        /// Why the attempt stopped.
        reason: StopReason,
    },
}

impl ProofResult {
    /// Whether the property was proven unreachable.
    pub fn is_proven(&self) -> bool {
        matches!(self, ProofResult::Proven { .. })
    }
}

/// Attempts to prove `bad` property `bad_index` unreachable by k-induction
/// with depths `0..=max_k`.
pub fn prove_k_induction(
    ctx: &Context,
    ts: &TransitionSystem,
    bad_index: usize,
    max_k: u32,
) -> ProofResult {
    prove_k_induction_limited(ctx, ts, bad_index, max_k, &BmcLimits::default())
}

/// [`prove_k_induction`] under resource limits: the base-case and
/// inductive-step queries both run with the limits' conflict budget,
/// deadline and interrupt flag, and the flag is additionally polled
/// between depths so cancellation lands before the next (exponentially
/// larger) step query is even encoded.
pub fn prove_k_induction_limited(
    ctx: &Context,
    ts: &TransitionSystem,
    bad_index: usize,
    max_k: u32,
    limits: &BmcLimits,
) -> ProofResult {
    let mut base = BmcEngine::new(ctx, ts);
    for k in 0..=max_k {
        if let Some(reason) = limits.poll() {
            return ProofResult::Cancelled { k, reason };
        }
        match base.check_bad_at_limited(bad_index, k, limits) {
            Ok(Some(trace)) => return ProofResult::Falsified(trace),
            Ok(None) => {}
            Err(reason) => return ProofResult::Cancelled { k, reason },
        }
        match inductive_step_holds(ctx, ts, bad_index, k, limits) {
            Ok(true) => return ProofResult::Proven { k },
            Ok(false) => {}
            Err(reason) => return ProofResult::Cancelled { k, reason },
        }
    }
    ProofResult::Unknown { max_k }
}

/// Checks the inductive step at depth `k`: from an arbitrary state, `k`
/// violation-free constrained cycles cannot be followed by a violation.
/// Returns `Ok(true)` iff the step query is unsatisfiable.
fn inductive_step_holds(
    ctx: &Context,
    ts: &TransitionSystem,
    bad_index: usize,
    k: u32,
    limits: &BmcLimits,
) -> Result<bool, StopReason> {
    let mut aig = Aig::new();
    let mut cnf = Cnf::new();
    let mut enc = Tseitin::new();
    let mut solver = Solver::new();

    // Frame 0: every state is a fresh AIG input (arbitrary start).
    let mut blaster = BitBlaster::new();
    for s in &ts.states {
        let w = ctx.width(s.term);
        let bits = (0..w).map(|_| aig.input()).collect();
        blaster.seed(ctx, s.term, bits);
    }

    for f in 0..=k {
        let mut input_bits = HashMap::new();
        let mut leaf = |aig: &mut Aig, t, w: u32| {
            input_bits
                .entry(t)
                .or_insert_with(|| (0..w).map(|_| aig.input()).collect::<Vec<_>>())
                .clone()
        };
        // Constraints hold at every frame.
        for &c in &ts.constraints {
            let bits = blaster.blast(ctx, &mut aig, c, &mut leaf);
            let lit = enc.lit(&aig, &mut cnf, bits[0]);
            cnf.add_clause(&[lit]);
        }
        // Bad is silent before frame k, asserted at frame k.
        let bits = blaster.blast(ctx, &mut aig, ts.bads[bad_index].term, &mut leaf);
        let lit = enc.lit(&aig, &mut cnf, bits[0]);
        cnf.add_clause(&[if f == k { lit } else { -lit }]);
        // Advance to the next frame.
        if f < k {
            let mut next = BitBlaster::new();
            for s in &ts.states {
                let bits = blaster.blast(ctx, &mut aig, s.next, &mut leaf);
                next.seed(ctx, s.term, bits);
            }
            blaster = next;
        }
    }
    for c in cnf.clauses() {
        solver.add_clause(c);
    }
    if let Some(flag) = &limits.interrupt {
        solver.set_interrupt(Arc::clone(flag));
    }
    if let Some(d) = limits.deadline {
        solver.set_deadline(d);
    }
    if let Some(m) = limits.mem_limit {
        solver.set_memory_limit(m);
    }
    match solver.solve_bounded(&[], limits.budget.unwrap_or(u64::MAX)) {
        SolveOutcome::Unsat => Ok(true),
        SolveOutcome::Sat => Ok(false),
        stop => Err(StopReason::from_outcome(stop).expect("verdicts handled above")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_property_proven() {
        // cnt' = cnt (frozen at 0); bad: cnt == 1. 1-inductive.
        let mut ctx = Context::new();
        let cnt = ctx.state("cnt", 4);
        let zero = ctx.zero(4);
        let one = ctx.constant(1, 4);
        let bad = ctx.eq(cnt, one);
        let mut ts = TransitionSystem::new("frozen");
        ts.add_state(cnt, Some(zero), cnt);
        ts.add_bad("is_one", bad);
        assert!(prove_k_induction(&ctx, &ts, 0, 4).is_proven());
    }

    #[test]
    fn reachable_property_falsified() {
        let mut ctx = Context::new();
        let cnt = ctx.state("cnt", 4);
        let zero = ctx.zero(4);
        let next = ctx.inc(cnt);
        let c3 = ctx.constant(3, 4);
        let bad = ctx.eq(cnt, c3);
        let mut ts = TransitionSystem::new("counter");
        ts.add_state(cnt, Some(zero), next);
        ts.add_bad("reach3", bad);
        match prove_k_induction(&ctx, &ts, 0, 10) {
            ProofResult::Falsified(t) => assert_eq!(t.len(), 4),
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn non_inductive_property_unknown() {
        // cnt counts 0..15 and wraps; bad: cnt == 15, but an environment
        // constraint freezes counting above 7 — from an arbitrary state
        // (e.g. 14) the step fails, yet from reset 15 is unreachable only
        // with the constraint; make it genuinely unreachable but not
        // k-inductive for small k: cnt' = (cnt < 7) ? cnt+1 : 0, bad: cnt == 12.
        let mut ctx = Context::new();
        let cnt = ctx.state("cnt", 4);
        let zero = ctx.zero(4);
        let c7 = ctx.constant(7, 4);
        let lt = ctx.ult(cnt, c7);
        let inc = ctx.inc(cnt);
        let next = ctx.ite(lt, inc, zero);
        let c12 = ctx.constant(12, 4);
        let bad = ctx.eq(cnt, c12);
        let mut ts = TransitionSystem::new("sat7");
        ts.add_state(cnt, Some(zero), next);
        ts.add_bad("reach12", bad);
        // Unreachable from reset (counter stays ≤ 7)...
        let mut engine = BmcEngine::new(&ctx, &ts);
        assert!(!engine.check_up_to(12).is_violated());
        // ...but from the arbitrary state 11 the successor is 0 (11 >= 7),
        // so 12 is never *produced*; k-induction actually proves this at
        // k=1: no state transitions into 12. Verify it proves.
        assert!(prove_k_induction(&ctx, &ts, 0, 4).is_proven());
    }

    #[test]
    fn genuinely_non_inductive_returns_unknown() {
        // Two counters locked in step from reset: a == b is an invariant
        // from reset, but from an arbitrary state a != b is possible and
        // persists; bad: a != b && a == 5 is unreachable from reset yet
        // never k-inductive without the a == b invariant.
        let mut ctx = Context::new();
        let a = ctx.state("a", 4);
        let b = ctx.state("b", 4);
        let zero = ctx.zero(4);
        let na = ctx.inc(a);
        let nb = ctx.inc(b);
        let c5 = ctx.constant(5, 4);
        let diff = ctx.ne(a, b);
        let at5 = ctx.eq(a, c5);
        let bad = ctx.and(diff, at5);
        let mut ts = TransitionSystem::new("lockstep");
        ts.add_state(a, Some(zero), na);
        ts.add_state(b, Some(zero), nb);
        ts.add_bad("diverged_at_5", bad);
        match prove_k_induction(&ctx, &ts, 0, 3) {
            ProofResult::Unknown { max_k } => assert_eq!(max_k, 3),
            other => panic!("expected unknown, got {other:?}"),
        }
    }
}
