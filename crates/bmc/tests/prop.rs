//! Property-based validation of the BMC engine against exhaustive
//! simulation.
//!
//! For random small transition systems with narrow inputs, a `bad`
//! property is reachable within bound `k` iff some input sequence of
//! length ≤ k+1 drives the simulator into it. Enumerating all sequences
//! gives ground truth to compare the engine's verdict against — this
//! closes the loop across bit-blasting, Tseitin, the SAT solver and trace
//! extraction at once.

// Opt-in: the proptest dev-dependency is not part of the offline
// workspace. Re-add `proptest` to this crate's dev-dependencies and build
// with `RUSTFLAGS="--cfg gqed_proptest"` to run this suite.
#![cfg(gqed_proptest)]

use gqed_bmc::{BmcEngine, BmcResult};
use gqed_ir::{eval_terms, Context, Sim, TermId, TransitionSystem};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small random sequential design over one input and two state regs.
#[derive(Clone, Debug)]
struct RandomTs {
    widths: (u32, u32),
    consts: (u128, u128, u128),
    ops: (u8, u8, u8),
    target: u128,
}

fn build_ts(r: &RandomTs) -> (Context, TransitionSystem, TermId) {
    let (w1, w2) = (r.widths.0.clamp(2, 5), r.widths.1.clamp(2, 5));
    let mut ctx = Context::new();
    let inp = ctx.input("in", 2);
    let s1 = ctx.state("s1", w1);
    let s2 = ctx.state("s2", w2);

    let pick = |ctx: &mut Context, op: u8, a: TermId, b: TermId| {
        let b = if ctx.width(b) == ctx.width(a) {
            b
        } else {
            let w = ctx.width(a);
            let bw = ctx.width(b);
            if bw < w {
                ctx.zext(b, w)
            } else {
                ctx.extract(b, w - 1, 0)
            }
        };
        match op % 5 {
            0 => ctx.add(a, b),
            1 => ctx.xor(a, b),
            2 => ctx.sub(a, b),
            3 => ctx.and(a, b),
            _ => ctx.or(a, b),
        }
    };

    let inz1 = ctx.zext(inp, w1);
    let c1 = ctx.constant(r.consts.0, w1);
    let t1 = pick(&mut ctx, r.ops.0, s1, inz1);
    let n1 = pick(&mut ctx, r.ops.1, t1, c1);

    let inz2 = ctx.zext(inp, w2);
    let c2 = ctx.constant(r.consts.1, w2);
    let t2 = pick(&mut ctx, r.ops.2, s2, inz2);
    let s1x = pick(&mut ctx, r.ops.0 ^ 3, t2, s1);
    let n2 = pick(&mut ctx, r.ops.1 ^ 1, s1x, c2);

    let tgt = ctx.constant(r.target, w1);
    let hit1 = ctx.eq(s1, tgt);
    let c2b = ctx.constant(r.consts.2, w2);
    let hit2 = ctx.ult(c2b, s2);
    let bad = ctx.and(hit1, hit2);

    let init1 = ctx.zero(w1);
    let init2 = ctx.constant(1, w2);
    let mut ts = TransitionSystem::new("random");
    ts.inputs.push(inp);
    ts.add_state(s1, Some(init1), n1);
    ts.add_state(s2, Some(init2), n2);
    ts.add_bad("hit", bad);
    (ctx, ts, inp)
}

/// Ground truth: is the bad reachable within `bound` (inclusive) for any
/// input sequence? Exhaustive over the 2-bit input.
fn exhaustive_reachable(
    ctx: &Context,
    ts: &TransitionSystem,
    inp: TermId,
    bound: u32,
) -> Option<u32> {
    // BFS over concrete state values.
    let mut frontier: Vec<HashMap<TermId, u128>> = vec![ts
        .states
        .iter()
        .map(|s| {
            let v = s
                .init
                .map(|i| eval_terms(ctx, &[i], |_| None)[0])
                .unwrap_or(0);
            (s.term, v)
        })
        .collect()];
    for frame in 0..=bound {
        let mut next_frontier = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for state in &frontier {
            for iv in 0..4u128 {
                let mut sim = Sim::new(ctx, ts);
                for (&t, &v) in state {
                    sim = sim.with_initial(t, v);
                }
                let mut inputs = HashMap::new();
                inputs.insert(inp, iv);
                let r = sim.step(&inputs);
                if !r.fired_bads.is_empty() {
                    return Some(frame);
                }
                let ns: Vec<(TermId, u128)> = ts
                    .states
                    .iter()
                    .map(|s| (s.term, sim.state_value(s.term)))
                    .collect();
                let key: Vec<u128> = ns.iter().map(|&(_, v)| v).collect();
                if seen.insert(key) {
                    next_frontier.push(ns.into_iter().collect());
                }
            }
        }
        frontier = next_frontier;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Cone-of-influence reduction must never change a BMC verdict — even
    /// on systems with states that are irrelevant to the property.
    #[test]
    fn coi_preserves_bmc_verdicts(
        w1 in 2u32..5,
        w2 in 2u32..5,
        c0 in any::<u128>(),
        c1 in any::<u128>(),
        c2 in any::<u128>(),
        o0 in any::<u8>(),
        o1 in any::<u8>(),
        o2 in any::<u8>(),
        target in 0u128..16,
        bound in 0u32..5,
    ) {
        let r = RandomTs {
            widths: (w1, w2),
            consts: (c0, c1, c2),
            ops: (o0, o1, o2),
            target,
        };
        let (mut ctx, mut ts, _inp) = build_ts(&r);
        // Add an unrelated free-running register the property never reads.
        let junk = ctx.state("junk", 6);
        let jn = ctx.inc(junk);
        let z6 = ctx.zero(6);
        ts.add_state(junk, Some(z6), jn);

        let reduced = ts.cone_of_influence(&ctx);
        prop_assert!(reduced.states.len() < ts.states.len(), "junk must be pruned");

        let mut e1 = BmcEngine::new(&ctx, &ts);
        let mut e2 = BmcEngine::new(&ctx, &reduced);
        let r1 = e1.check_up_to(bound);
        let r2 = e2.check_up_to(bound);
        prop_assert_eq!(r1.is_violated(), r2.is_violated());
        if let (Some(t1), Some(t2)) = (r1.trace(), r2.trace()) {
            prop_assert_eq!(t1.len(), t2.len(), "detection frame must match");
        }
    }

    #[test]
    fn bmc_agrees_with_exhaustive_search(
        w1 in 2u32..5,
        w2 in 2u32..5,
        c0 in any::<u128>(),
        c1 in any::<u128>(),
        c2 in any::<u128>(),
        o0 in any::<u8>(),
        o1 in any::<u8>(),
        o2 in any::<u8>(),
        target in 0u128..16,
        bound in 0u32..6,
    ) {
        let r = RandomTs {
            widths: (w1, w2),
            consts: (c0, c1, c2),
            ops: (o0, o1, o2),
            target,
        };
        let (ctx, ts, inp) = build_ts(&r);
        let expected = exhaustive_reachable(&ctx, &ts, inp, bound);
        let mut engine = BmcEngine::new(&ctx, &ts);
        match engine.check_up_to(bound) {
            BmcResult::Violated(trace) => {
                let first = expected
                    .unwrap_or_else(|| panic!("BMC found a violation the exhaustive search missed"));
                // The engine searches frame by frame, so its trace must hit
                // the *first* reachable frame.
                prop_assert_eq!(trace.len() as u32, first + 1);
            }
            BmcResult::NoneUpTo(_) => {
                prop_assert_eq!(expected, None, "BMC missed a reachable violation");
            }
        }
    }
}
