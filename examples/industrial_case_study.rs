//! The industrial case study, reproduced on the `dma` stand-in.
//!
//! The paper's headline: on an industrial configuration-driven IP, G-QED
//! found critical bugs that escaped a 370-person-day conventional flow,
//! while itself costing 21 person-days — an 18× productivity improvement.
//! This example reproduces both halves on the `dma` design (a
//! configuration-register + burst-engine accelerator with the same
//! interference structure):
//!
//! * the *bug half* — the classic config-written-during-transfer bug is
//!   invisible to the design's conventional assertions and caught by
//!   G-QED;
//! * the *effort half* — the calibrated productivity cost model
//!   regenerates the 370 vs 21 person-day comparison.
//!
//! Run with: `cargo run --release --example industrial_case_study`

use gqed::core::productivity::{
    conventional_person_days, gqed_person_days, productivity_gain, CaseStudy, ConventionalCosts,
    GqedCosts,
};
use gqed::core::{check_design, CheckKind, Verdict};
use gqed::ha::designs::dma;

fn main() {
    println!("=== Industrial case study (dma stand-in) ===\n");

    let params = dma::Params::default();

    // --- Bug half -------------------------------------------------------
    println!("--- verification ---");
    let clean = dma::build(&params, None);
    let base = check_design(&clean, CheckKind::GQed, 12);
    println!(
        "bug-free IP, G-QED: {:?} ({:.2?})",
        base.verdict, base.elapsed
    );
    assert!(!base.verdict.is_violation());

    let buggy = dma::build(&params, Some("cfg-leak-while-busy"));
    println!("\ninjected: cfg-leak-while-busy (a request offered during an");
    println!("active transfer silently rewrites the configuration registers)");
    let conv = check_design(&buggy, CheckKind::Conventional, 12);
    let gq = check_design(&buggy, CheckKind::GQed, 12);
    match &conv.verdict {
        Verdict::CleanUpTo(b) => {
            println!("conventional assertions: clean up to bound {b}  -> ESCAPE")
        }
        v => println!("conventional assertions: {v:?}"),
    }
    match &gq.verdict {
        Verdict::Violation { property, cycles } => {
            println!("G-QED: violation of '{property}' in {cycles} cycles  -> CAUGHT")
        }
        v => println!("G-QED: {v:?}"),
    }
    assert!(!conv.verdict.is_violation());
    assert!(gq.verdict.is_violation());

    // --- Effort half ------------------------------------------------------
    println!("\n--- productivity (cost model, calibrated to the paper) ---");
    let cs = CaseStudy::industrial_dma();
    let c = ConventionalCosts::default();
    let g = GqedCosts::default();
    let conv_days = conventional_person_days(&cs, &c);
    let gqed_days = gqed_person_days(&cs, &g);
    println!(
        "case study: {} architectural features, {} conventional properties",
        cs.features, cs.properties
    );
    println!("conventional flow : {conv_days:6.0} person-days");
    println!("G-QED flow        : {gqed_days:6.0} person-days");
    println!(
        "productivity gain : {:6.1}x  (paper: 18x, 370 -> 21 person-days)",
        productivity_gain(&cs, &c, &g)
    );
}
