//! Catalogue-wide bug hunt: run G-QED against every catalogued bug of a
//! chosen design (or of all designs with `--all`) and tabulate the
//! detection results against the catalogue's ground truth.
//!
//! Run with:
//!   cargo run --release --example bug_hunt            # one design (accum)
//!   cargo run --release --example bug_hunt -- crc32   # pick a design
//!   cargo run --release --example bug_hunt -- --all   # the full suite
//!
//! This is the interactive sibling of the Table 2 generator in
//! `gqed-bench` (`cargo run -p gqed-bench --bin table2`).

use gqed::core::theory::evaluation_bound;
use gqed::core::{check_design, CheckKind, Verdict};
use gqed::ha::{all_designs, DesignEntry};

fn hunt(entry: &DesignEntry) {
    println!(
        "\n=== {} ({}) ===",
        entry.name,
        if entry.interfering {
            "interfering"
        } else {
            "non-interfering"
        }
    );
    println!(
        "{:32} {:18} {:>7} {:>9} expected",
        "bug", "verdict", "cycles", "time"
    );
    for bug in (entry.bugs)() {
        let design = entry.build_buggy(bug.id);
        let bound = evaluation_bound(&design, &bug);
        let o = check_design(&design, CheckKind::GQed, bound);
        let (verdict, cycles) = match &o.verdict {
            Verdict::Violation { property, cycles } => (property.clone(), cycles.to_string()),
            Verdict::CleanUpTo(_) => ("clean".to_string(), "-".to_string()),
        };
        let agree = o.verdict.is_violation() == bug.expected.gqed;
        println!(
            "{:32} {:18} {:>7} {:>8.1?} {}{}",
            bug.id,
            verdict,
            cycles,
            o.elapsed,
            if bug.expected.gqed {
                "detect"
            } else {
                "miss (outside bug class)"
            },
            if agree { "" } else { "  << MISMATCH" }
        );
        assert!(
            agree,
            "{}::{} disagrees with the catalogue",
            entry.name, bug.id
        );
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let designs = all_designs();
    match arg.as_deref() {
        Some("--all") => {
            for e in &designs {
                hunt(e);
            }
        }
        Some(name) => {
            let e = designs
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("unknown design '{name}'"));
            hunt(e);
        }
        None => {
            let e = designs.iter().find(|e| e.name == "accum").unwrap();
            hunt(e);
        }
    }
    println!("\nall verdicts agree with the catalogue ground truth");
}
