//! The paper's motivating scenario: why A-QED breaks on interfering
//! accelerators, and how G-QED generalizes it.
//!
//! Three acts on the `accum` accelerator (ACC/CLR/GET transactions over a
//! running accumulator):
//!
//! 1. **A-QED false-alarms on the bug-free design.** Its functional
//!    consistency check demands equal responses for equal request
//!    payloads — but two GETs legitimately return different values when
//!    ACCs happened in between. The reported "violation" is a false
//!    positive, demonstrating that A-QED's soundness argument needs
//!    non-interference.
//! 2. **G-QED passes the bug-free design.** The generalized functional
//!    consistency condition additionally requires equal *architectural
//!    state* at acceptance, and the dual-copy determinism check compares
//!    equal transaction *sequences*, so legitimate interference is never
//!    flagged.
//! 3. **G-QED catches real interference bugs** that both the conventional
//!    assertions and (conceptually) any single-transaction test miss.
//!
//! Run with: `cargo run --release --example interfering_accumulator`

use gqed::core::{check_design, CheckKind, Verdict};
use gqed::ha::designs::accum;

fn describe(v: &Verdict) -> String {
    match v {
        Verdict::Violation { property, cycles } => {
            format!("VIOLATION of '{property}' ({cycles} cycles)")
        }
        Verdict::CleanUpTo(b) => format!("clean up to bound {b}"),
    }
}

fn main() {
    let params = accum::Params::default();

    println!("=== Act 1: A-QED on the BUG-FREE interfering accumulator ===");
    let clean = accum::build(&params, None);
    let aqed = check_design(&clean, CheckKind::AQed, 14);
    println!("A-QED: {}", describe(&aqed.verdict));
    assert!(aqed.verdict.is_violation());
    println!(
        "  -> a FALSE ALARM: the design is correct; two equal GET payloads \
         returned different values because ACCs interfered in between.\n"
    );

    println!("=== Act 2: G-QED on the same bug-free design ===");
    let gqed = check_design(&clean, CheckKind::GQed, 12);
    println!("G-QED: {}", describe(&gqed.verdict));
    assert!(!gqed.verdict.is_violation());
    println!(
        "  -> the architectural-state condition (FC-G) and the dual-copy \
         sequence miter (TLD) accept legitimate interference.\n"
    );

    println!("=== Act 3: real interference bugs ===");
    for bug in [
        "carry-leak",
        "backpressure-acc-corrupt",
        "stale-result-overwrite",
        "uninit-acc",
    ] {
        let buggy = accum::build(&params, Some(bug));
        let g = check_design(&buggy, CheckKind::GQed, 16);
        let c = check_design(&buggy, CheckKind::Conventional, 16);
        println!(
            "{bug:28} G-QED: {:44} conventional: {}",
            describe(&g.verdict),
            describe(&c.verdict)
        );
        assert!(g.verdict.is_violation(), "{bug} must be caught by G-QED");
    }
    println!(
        "\nAll four context-dependent bugs escape the conventional assertions \
         (the 'well-verified design' escapes of the paper's abstract) and are \
         caught by G-QED's universal checks."
    );
}
