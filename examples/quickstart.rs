//! Quickstart: verify an accelerator with G-QED in a dozen lines.
//!
//! Builds the `accum` accelerator (an *interfering* design: responses
//! depend on the accumulated state), injects a micro-architectural
//! state-leak bug, and lets G-QED find it — with no design-specific
//! properties, no testbench, no functional specification. The resulting
//! counterexample is replay-confirmed, printed as a cycle table, and
//! dumped as a VCD waveform.
//!
//! Run with: `cargo run --release --example quickstart`

use gqed::core::{check_design, CheckKind, Verdict};
use gqed::ha::designs::accum;

fn main() {
    println!("=== G-QED quickstart ===\n");

    // 1. A bug-free build passes.
    let clean = accum::build(&accum::Params::default(), None);
    println!("design: {} ({})", clean.meta.name, clean.meta.description);
    let outcome = check_design(&clean, CheckKind::GQed, 12);
    println!(
        "bug-free build: {:?}  ({} CNF clauses, {} conflicts, {:.2?})",
        outcome.verdict, outcome.stats.cnf_clauses, outcome.stats.solver.conflicts, outcome.elapsed
    );

    // 2. Inject the carry-leak bug: the carry flag of the previous ACC
    //    leaks into the next sum. A classic "well-verified design" escape:
    //    no single-transaction test can see it.
    let buggy = accum::build(&accum::Params::default(), Some("carry-leak"));
    println!("\ninjected bug: carry-leak");
    let outcome = check_design(&buggy, CheckKind::GQed, 16);
    match &outcome.verdict {
        Verdict::Violation { property, cycles } => {
            println!("G-QED violation of '{property}' in {cycles} cycles");
        }
        Verdict::CleanUpTo(b) => {
            println!("unexpectedly clean up to bound {b}");
            return;
        }
    }

    // 3. Inspect the counterexample. The trace pins down every input of
    //    the wrapped model (both copies' schedules + the transaction tape).
    let trace = outcome.trace.expect("violation carries a trace");
    // Re-synthesize the wrapper to get the model the trace speaks about.
    let mut d = buggy.clone();
    let model = gqed::core::synthesize(&mut d, &gqed::core::QedConfig::gqed());
    println!("\n{}", trace.pretty(&d.ctx, &model.ts));

    // 4. Dump a waveform (schedules + both copies' outputs).
    let vcd = trace.to_vcd(&d.ctx, &model.ts);
    let path = std::env::temp_dir().join("gqed_quickstart.vcd");
    std::fs::write(&path, vcd.render()).expect("write VCD");
    println!("waveform written to {}", path.display());
}
