//! Bring your own accelerator: how a downstream user verifies a design
//! that is *not* part of the built-in library.
//!
//! We define a little interfering accelerator from scratch — a running-
//! minimum tracker (PUT(x) responds with min so far; RESET clears) — in
//! two variants: a correct one and one with a back-pressure bug. All G-QED
//! needs from us is:
//!
//! 1. the transition system (the design itself),
//! 2. the transactional interface (which signals are the handshake and
//!    payloads), and
//! 3. the architectural-state projection (here: the min register).
//!
//! No assertions, no reference model, no testbench.
//!
//! Run with: `cargo run --release --example custom_design`

use gqed::core::{check_design, CheckKind, Verdict};
use gqed::ha::skeleton::{capture, TxnControl};
use gqed::ha::{Design, DesignMeta, HaInterface};
use gqed::ir::{Context, TransitionSystem};

/// Builds the running-minimum accelerator. `buggy` injects a defect: the
/// min register absorbs the *live input bus* while the response is
/// stalled by back-pressure.
fn build_minmax(buggy: bool) -> Design {
    let w = 8;
    let mut ctx = Context::new();
    let mut ts = TransitionSystem::new("mintrack");
    let ctl = TxnControl::build(&mut ctx, &mut ts, 1);

    let op = ctx.input("op", 1); // 0 = PUT, 1 = RESET
    let x = ctx.input("x", w);
    ts.inputs.push(op);
    ts.inputs.push(x);
    let op_r = capture(&mut ctx, &mut ts, "op_r", ctl.accept, op);
    let x_r = capture(&mut ctx, &mut ts, "x_r", ctl.accept, x);

    // Architectural state: the running minimum (all-ones after reset).
    let min = ctx.state("min", w);
    let maxval = ctx.ones(w);

    let is_put = ctx.not(op_r);
    let x_lt = ctx.ult(x_r, min);
    let lowered = ctx.ite(x_lt, x_r, min);
    let res_val = ctx.ite(is_put, lowered, maxval);
    let upd = ctx.ite(is_put, lowered, maxval);

    let held = if buggy {
        // Defect: while the response waits for out_ready, the live bus
        // leaks into the min register.
        let not_rdy = ctx.not(ctl.out_ready);
        let stalled = ctx.and(ctl.pending, not_rdy);
        let bus_lt = ctx.ult(x, min);
        let absorbed = ctx.ite(bus_lt, x, min);
        ctx.ite(stalled, absorbed, min)
    } else {
        min
    };
    let min_next = ctx.ite(ctl.done, upd, held);
    ts.add_state(min, Some(maxval), min_next);

    let res_r = capture(&mut ctx, &mut ts, "res_r", ctl.done, res_val);
    ts.outputs = vec![
        ("in_ready".into(), ctl.in_ready),
        ("out_valid".into(), ctl.out_valid),
        ("min".into(), res_r),
    ];

    let iface = HaInterface {
        in_valid: ctl.in_valid,
        in_ready: ctl.in_ready,
        in_payload: vec![op, x],
        out_valid: ctl.out_valid,
        out_ready: ctl.out_ready,
        out_payload: vec![res_r],
    };

    Design {
        ctx,
        ts,
        iface,
        arch_state: vec![min], // the one manual insight G-QED needs
        conventional: vec![],  // we wrote no assertions — that's the point
        meta: DesignMeta {
            name: "mintrack",
            interfering: true,
            description: "running-minimum tracker (user-defined)",
            latency: 1,
            recommended_bound: 10,
        },
        injected_bug: if buggy {
            Some("bus-absorb-on-stall")
        } else {
            None
        },
    }
}

fn main() {
    println!("=== custom design: running-minimum tracker ===\n");

    let clean = build_minmax(false);
    let o = check_design(&clean, CheckKind::GQed, 10);
    println!(
        "correct implementation : {:?} ({:.2?})",
        o.verdict, o.elapsed
    );
    assert!(!o.verdict.is_violation());

    let buggy = build_minmax(true);
    let o = check_design(&buggy, CheckKind::GQed, 10);
    match &o.verdict {
        Verdict::Violation { property, cycles } => {
            println!("buggy implementation   : VIOLATION of '{property}' in {cycles} cycles");
            println!("\n{}", {
                let mut d = buggy.clone();
                let model = gqed::core::synthesize(&mut d, &gqed::core::QedConfig::gqed());
                o.trace.as_ref().unwrap().pretty(&d.ctx, &model.ts)
            });
        }
        v => panic!("bug escaped: {v:?}"),
    }
    println!(
        "The defect was found with zero design-specific properties: the\n\
         designer only declared the interface and pointed at the min register."
    );
}
