//! `gqed` — command-line front-end to the G-QED verification flow.
//!
//! ```text
//! gqed list                         designs and their bug catalogues
//! gqed check <design> [opts]        run a verification flow
//!      --bug <id>                   inject a catalogued bug
//!      --flow gqed|aqed|conv        flow to run (default gqed)
//!      --bound <n>                  BMC bound (default: design recommendation)
//!      --vcd <file>                 dump the counterexample waveform
//! gqed hunt [<design>|--all]        sweep a design's bug catalogue with G-QED
//! gqed export <design> [opts]       emit the design as BTOR2 on stdout
//!      --bug <id>                   inject a catalogued bug first
//!      --wrapped                    export the G-QED-wrapped model instead
//!      --format btor2|dot|smt2      output format (default btor2)
//!      --frame <k>                  smt2 only: frame to assert the first
//!                                   property at (default 5)
//! gqed bmc <file.btor2> [opts]      model-check an external BTOR2 file
//!      --bound <n>                  BMC bound (default 20)
//!      --prove                      try k-induction after clean BMC
//! gqed prove <design>               k-induction on the conventional assertions
//!      --max-k <n>                  induction depth limit (default 6)
//! gqed campaign [<design>…|--all]   run the full verification campaign
//!      --jobs <n>                   worker threads (default 1)
//!      --deadline-ms <m>            per-attempt deadline, Luby-escalated
//!      --budget <c>                 per-attempt conflict budget, Luby-escalated
//!      --max-attempts <n>           escalation attempts (default 4)
//!      --telemetry <file>           write JSONL telemetry (schema: EXPERIMENTS.md)
//!      --flow gqed[,aqed,conv]      restrict to the listed flows
//!      --engines bmc,kind,pdr       proof-engine portfolio raced on clean
//!                                   designs (default: all three)
//!      --no-race                    shorthand for --engines bmc (plain
//!                                   deterministic bounded BMC)
//!      --cold                       disable the warm-start pipeline
//!                                   (model cache + resumable sessions)
//!      --journal <file>             crash-safe write-ahead journal of verdicts
//!                                   (schema: EXPERIMENTS.md)
//!      --resume <file>              resume from a journal: skip obligations
//!                                   with settled verdicts, re-run the rest,
//!                                   merge into one summary
//!      --mem-limit <bytes[K|M|G]>   clause-arena byte budget per solver;
//!                                   memory-stopped jobs retry cold
//!      --summary-out <file>         write the normalized per-obligation
//!                                   summary (stable across runs/resumes)
//!      --store <file>               content-addressed verdict store: serve
//!                                   unchanged obligations from disk, publish
//!                                   fresh conclusive verdicts back
//!      --fleet <n>                  solve on n supervised worker *processes*
//!                                   (gqed worker children) instead of threads:
//!                                   crashes are contained, crashed obligations
//!                                   requeued, repeat offenders quarantined as
//!                                   `poisoned`
//!      --crash-budget <n>           worker crashes one obligation may cause
//!                                   before quarantine (default 3)
//!      --heartbeat-timeout-ms <m>   silence after which a worker is declared
//!                                   dead and restarted (default 30000)
//!      --chaos-kills <n>            chaos testing: seeded-randomly kill the
//!                                   worker on n obligations' first dispatch
//!      --chaos-seed <s>             seed for --chaos-kills (default 1)
//!
//!      SIGINT/SIGTERM cancel the campaign gracefully: in-flight solvers
//!      stop at the next poll, pending obligations drain as `cancelled`
//!      with journal checkpoints, and the exit code is 130. A second
//!      signal exits immediately.
//! gqed mutants [<design>…] [opts]   seeded mutation campaign: synthesize
//!                                   mutants, solve them, report the
//!                                   detection-rate table
//!      --seed <s>                   mutation seed (default 1)
//!      --per-design <n>             distinct mutants per design (default 10)
//!      --out <file>                 report path (default BENCH_mutants.json)
//!      --floor <f>                  detection-rate regression floor
//!      plus the campaign knobs (--jobs, --deadline-ms, --budget,
//!      --max-attempts, --telemetry, --flow, --journal, --resume,
//!      --mem-limit, --summary-out, --store, --engines, --no-race);
//!      engines default to bmc-only so the table is byte-identical at
//!      any worker count
//! gqed serve [opts]                 long-running campaign service (TCP,
//!                                   line-delimited JSON; see EXPERIMENTS.md)
//!      --addr <host:port>           listen address (default 127.0.0.1:7878;
//!                                   port 0 picks an ephemeral port)
//!      --store <file>               persistent verdict store shared by every
//!                                   batch (default: in-memory, process-lifetime)
//!      --telemetry <file>           write serve_error/serve_summary JSONL
//!                                   telemetry for the accept loop
//!      --max-request-bytes <n>      cap on one request line (default 8 MiB);
//!                                   oversize requests get a structured error
//!      --read-timeout-ms <m>        socket read timeout (default 30000;
//!                                   0 disables)
//!      plus the campaign solver knobs (--jobs, --deadline-ms, --budget,
//!      --max-attempts, --engines, --no-race, --cold, --mem-limit) as the
//!      base configuration; each batch request may override them
//! gqed submit [<design>…|--all]     submit one batch to a running server
//!      --addr <host:port>           server address (default 127.0.0.1:7878)
//!      --batch <label>              batch label echoed in telemetry
//!      --flow gqed[,aqed,conv]      restrict to the listed flows
//!      --jobs/--deadline-ms/--budget/--max-attempts/--engines
//!                                   per-batch overrides of the server's base
//!      --telemetry <file>           write the streamed JSONL telemetry
//!      --summary-out <file>         write the normalized summary
//!      --retries <n>                retry refused/broken connections with
//!                                   capped exponential backoff (default 0)
//!      --retry-delay-ms <m>         base retry delay (default 200)
//!      --shutdown                   ask the server to shut down instead
//! gqed worker                       fleet worker child (internal): solves
//!                                   single-obligation work_request lines from
//!                                   stdin, answers on stdout (EXPERIMENTS.md)
//! gqed bench [opts]                 cold-vs-warm pipeline benchmark
//!      --quick                      small suite for the CI smoke step
//!      --out <file>                 report path (default BENCH_pipeline.json)
//!      --telemetry <file>           write attempt-level JSONL telemetry
//! gqed productivity [--features n --properties n]
//!                                   evaluate the person-day cost model
//! ```

use gqed::core::productivity::{
    conventional_person_days, gqed_person_days, productivity_gain, CaseStudy, ConventionalCosts,
    GqedCosts,
};
use gqed::core::theory::evaluation_bound;
use gqed::core::{check_design, synthesize, CheckKind, QedConfig, Verdict};
use gqed::ha::{all_designs, Design, DesignEntry};
use gqed::ir::to_btor2;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("check") => cmd_check(&args[1..]),
        Some("hunt") => cmd_hunt(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("bmc") => cmd_bmc(&args[1..]),
        Some("prove") => cmd_prove(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("mutants") => cmd_mutants(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("worker") => exit(gqed::campaign::run_worker()),
        Some("bench") => cmd_bench(&args[1..]),
        Some("productivity") => cmd_productivity(&args[1..]),
        _ => {
            eprintln!(
                "usage: gqed <list|check|hunt|export|bmc|prove|campaign|mutants|serve|submit|worker|bench|productivity> …"
            );
            eprintln!("       (see the crate docs or src/bin/gqed.rs for options)");
            exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn find_design(name: &str) -> DesignEntry {
    all_designs()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| {
            let names: Vec<&str> = all_designs().iter().map(|e| e.name).collect();
            eprintln!("unknown design '{name}'; available: {names:?}");
            exit(2);
        })
}

fn build(entry: &DesignEntry, args: &[String]) -> Design {
    match flag_value(args, "--bug") {
        Some(b) => entry.build_buggy(b),
        None => entry.build_clean(),
    }
}

fn cmd_list() {
    for entry in all_designs() {
        let d = entry.build_clean();
        println!(
            "{:10} {:15} {}",
            entry.name,
            if entry.interfering {
                "interfering"
            } else {
                "non-interfering"
            },
            d.meta.description
        );
        for b in (entry.bugs)() {
            println!(
                "    {:32} [{:?}] {}",
                b.id,
                b.class,
                if b.expected.gqed {
                    "G-QED detects"
                } else {
                    "outside self-consistency class"
                }
            );
        }
    }
}

fn cmd_check(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("usage: gqed check <design> [--bug id] [--flow gqed|aqed|conv] [--bound n] [--vcd file]");
        exit(2);
    };
    let entry = find_design(name);
    let design = build(&entry, args);
    let kind = match flag_value(args, "--flow") {
        None | Some("gqed") => CheckKind::GQed,
        Some("aqed") => CheckKind::AQed,
        Some("conv") | Some("conventional") => CheckKind::Conventional,
        Some(f) => {
            eprintln!("unknown flow '{f}'");
            exit(2);
        }
    };
    let bound = match flag_value(args, "--bound") {
        Some(b) => b.parse().unwrap_or_else(|_| {
            eprintln!("bad bound '{b}'");
            exit(2);
        }),
        None => design.meta.recommended_bound,
    };
    eprintln!(
        "checking {} ({}) with {} at bound {bound}…",
        design.meta.name,
        design
            .injected_bug
            .map(|b| format!("bug: {b}"))
            .unwrap_or_else(|| "bug-free".into()),
        kind.name()
    );
    let o = check_design(&design, kind, bound);
    match &o.verdict {
        Verdict::Violation { property, cycles } => {
            println!(
                "VIOLATION of '{property}' in {cycles} cycles ({:.2?})",
                o.elapsed
            );
            let trace = o.trace.as_ref().expect("violation carries trace");
            // Re-synthesize to print against the right model.
            let mut d2 = design.clone();
            let ts = match kind {
                CheckKind::GQed => synthesize(&mut d2, &QedConfig::gqed()).ts,
                CheckKind::AQed => synthesize(&mut d2, &QedConfig::aqed()).ts,
                CheckKind::Conventional => {
                    let mut ts = d2.ts.clone();
                    ts.bads = d2.conventional.clone();
                    ts
                }
            };
            println!("{}", trace.pretty(&d2.ctx, &ts));
            if let Some(path) = flag_value(args, "--vcd") {
                let vcd = trace.to_vcd(&d2.ctx, &ts);
                std::fs::write(path, vcd.render()).expect("write VCD");
                eprintln!("waveform written to {path}");
            }
            exit(1);
        }
        Verdict::CleanUpTo(b) => {
            println!(
                "clean up to bound {b} ({:.2?}; {} clauses, {} conflicts)",
                o.elapsed, o.stats.cnf_clauses, o.stats.solver.conflicts
            );
        }
    }
}

fn cmd_hunt(args: &[String]) {
    let entries = all_designs();
    let selected: Vec<&DesignEntry> = match args.first().map(String::as_str) {
        Some("--all") | None => entries.iter().collect(),
        Some(name) => vec![entries.iter().find(|e| e.name == name).unwrap_or_else(|| {
            eprintln!("unknown design '{name}'");
            exit(2);
        })],
    };
    let mut failures = 0;
    for entry in selected {
        println!("== {} ==", entry.name);
        for bug in (entry.bugs)() {
            let d = entry.build_buggy(bug.id);
            let bound = evaluation_bound(&d, &bug);
            let o = check_design(&d, CheckKind::GQed, bound);
            let ok = o.verdict.is_violation() == bug.expected.gqed;
            if !ok {
                failures += 1;
            }
            println!(
                "  {:32} {:40} {}",
                bug.id,
                match &o.verdict {
                    Verdict::Violation { property, cycles } =>
                        format!("caught: {property} ({cycles}cy)"),
                    Verdict::CleanUpTo(b) => format!("clean@{b}"),
                },
                if ok { "ok" } else { "MISMATCH" }
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} verdicts disagree with the catalogue");
        exit(1);
    }
}

fn cmd_export(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("usage: gqed export <design> [--bug id] [--wrapped] [--format btor2|dot]");
        exit(2);
    };
    let entry = find_design(name);
    let mut design = build(&entry, args);
    let ts = if has_flag(args, "--wrapped") {
        synthesize(&mut design, &QedConfig::gqed()).ts
    } else {
        // Attach the conventional assertions so the export carries
        // checkable properties.
        let mut ts = design.ts.clone();
        ts.bads = design.conventional.clone();
        ts
    };
    match flag_value(args, "--format") {
        None | Some("btor2") => print!("{}", to_btor2(&design.ctx, &ts)),
        Some("dot") => {
            let mut roots: Vec<(String, gqed::ir::TermId)> = ts.outputs.clone();
            roots.extend(ts.bads.iter().map(|b| (b.name.clone(), b.term)));
            print!("{}", gqed::ir::to_dot(&design.ctx, &roots));
        }
        Some("smt2") => {
            if ts.bads.is_empty() {
                eprintln!("no properties to export; use --wrapped or a buggy build");
                exit(2);
            }
            let k = flag_value(args, "--frame")
                .map(|v| v.parse().expect("bad --frame"))
                .unwrap_or(5);
            print!("{}", gqed::ir::unrolling_to_smt2(&design.ctx, &ts, 0, k));
        }
        Some(f) => {
            eprintln!("unknown format '{f}'");
            exit(2);
        }
    }
}

fn cmd_bmc(args: &[String]) {
    let Some(path) = args.first() else {
        eprintln!("usage: gqed bmc <file.btor2> [--bound n] [--prove]");
        exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let (ctx, ts) = gqed::ir::from_btor2(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    if ts.bads.is_empty() {
        eprintln!("model has no bad properties");
        exit(2);
    }
    let bound: u32 = flag_value(args, "--bound")
        .map(|v| v.parse().expect("bad --bound"))
        .unwrap_or(20);
    eprintln!(
        "model: {} inputs, {} states ({} bits), {} properties",
        ts.inputs.len(),
        ts.states.len(),
        ts.state_bits(&ctx),
        ts.bads.len()
    );
    let mut engine = gqed::bmc::BmcEngine::new(&ctx, &ts);
    match engine.check_up_to(bound) {
        gqed::bmc::BmcResult::Violated(trace) => {
            println!(
                "VIOLATION of '{}' in {} cycles",
                trace.bad_name,
                trace.len()
            );
            println!("{}", trace.pretty(&ctx, &ts));
            print!("{}", trace.to_btor2_witness(&ctx, &ts));
            exit(1);
        }
        gqed::bmc::BmcResult::NoneUpTo(b) => {
            println!("clean up to bound {b}");
            if has_flag(args, "--prove") {
                for (i, bad) in ts.bads.iter().enumerate() {
                    let r = gqed::bmc::prove_k_induction(&ctx, &ts, i, 8);
                    println!(
                        "{:30} {}",
                        bad.name,
                        match r {
                            gqed::bmc::ProofResult::Proven { k } => format!("PROVEN (k = {k})"),
                            gqed::bmc::ProofResult::Falsified(t) =>
                                format!("FALSIFIED ({} cycles)", t.len()),
                            gqed::bmc::ProofResult::Unknown { max_k } =>
                                format!("unknown up to k = {max_k}"),
                            gqed::bmc::ProofResult::Cancelled { k, reason } =>
                                format!("cancelled at k = {k} ({reason:?})"),
                        }
                    );
                }
            }
        }
    }
}

fn cmd_prove(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("usage: gqed prove <design> [--max-k n]");
        exit(2);
    };
    let entry = find_design(name);
    let design = build(&entry, args);
    let max_k: u32 = flag_value(args, "--max-k")
        .map(|v| v.parse().expect("bad --max-k"))
        .unwrap_or(6);
    let mut ts = design.ts.clone();
    ts.bads = design.conventional.clone();
    for (i, b) in ts.bads.iter().enumerate() {
        let r = gqed::bmc::prove_k_induction(&design.ctx, &ts, i, max_k);
        println!(
            "{:35} {}",
            b.name,
            match r {
                gqed::bmc::ProofResult::Proven { k } => format!("PROVEN (k = {k})"),
                gqed::bmc::ProofResult::Falsified(t) =>
                    format!("FALSIFIED ({}-cycle counterexample)", t.len()),
                gqed::bmc::ProofResult::Unknown { max_k } =>
                    format!("unknown up to k = {max_k} (needs an invariant)"),
                gqed::bmc::ProofResult::Cancelled { k, reason } =>
                    format!("cancelled at k = {k} ({reason:?})"),
            }
        );
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    flag_value(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("bad {name} '{v}'");
            exit(2);
        })
    })
}

/// The `--flow` filter shared by `campaign` and `submit`.
fn parse_flows(args: &[String]) -> gqed::campaign::FlowFilter {
    use gqed::campaign::FlowFilter;
    match flag_value(args, "--flow") {
        None => FlowFilter::all(),
        Some(list) => {
            let mut f = FlowFilter {
                gqed: false,
                aqed: false,
                conventional: false,
            };
            for flow in list.split(',') {
                match flow {
                    "gqed" => f.gqed = true,
                    "aqed" => f.aqed = true,
                    "conv" | "conventional" => f.conventional = true,
                    other => {
                        eprintln!("unknown flow '{other}' (expected gqed, aqed or conv)");
                        exit(2);
                    }
                }
            }
            f
        }
    }
}

/// Engine selection shared by `campaign` and `serve`: `--engines` picks
/// the clean-design proof portfolio; `--no-race` is the historical
/// shorthand for the deterministic BMC-only path.
fn parse_engines(args: &[String]) -> Vec<gqed::campaign::EngineId> {
    use gqed::campaign::EngineId;
    match (flag_value(args, "--engines"), has_flag(args, "--no-race")) {
        (Some(_), true) => {
            eprintln!(
                "--engines and --no-race are mutually exclusive (--no-race means --engines bmc)"
            );
            exit(2);
        }
        (Some(list), false) => EngineId::parse_list(list).unwrap_or_else(|e| {
            eprintln!("bad --engines '{list}': {e}");
            exit(2);
        }),
        (None, true) => vec![EngineId::Bmc],
        (None, false) => gqed::campaign::default_portfolio(),
    }
}

/// The campaign configuration implied by the shared solver flags —
/// `campaign` uses it directly, `serve` as the base configuration batch
/// requests override.
fn campaign_config_from_args(args: &[String]) -> gqed::campaign::CampaignConfig {
    use gqed::campaign::CampaignConfig;
    let mut config = CampaignConfig::default()
        .with_engines(parse_engines(args))
        .with_warm_start(!has_flag(args, "--cold"));
    if let Some(jobs) = parse_flag(args, "--jobs") {
        config = config.with_jobs(jobs);
    }
    if let Some(ms) = parse_flag(args, "--deadline-ms") {
        config = config.with_deadline_ms(ms);
    }
    if let Some(budget) = parse_flag(args, "--budget") {
        config = config.with_base_budget(budget);
    }
    if let Some(attempts) = parse_flag(args, "--max-attempts") {
        config = config.with_max_attempts(attempts);
    }
    if let Some(v) = flag_value(args, "--mem-limit") {
        let bytes = parse_size(v).unwrap_or_else(|| {
            eprintln!("bad --mem-limit '{v}' (expected bytes with optional K/M/G suffix)");
            exit(2);
        });
        config = config.with_mem_limit(bytes);
    }
    config
}

/// Parses a byte size with an optional `K`/`M`/`G` suffix (powers of
/// 1024), e.g. `512M`.
fn parse_size(v: &str) -> Option<usize> {
    let (digits, shift) = match v.as_bytes().last()? {
        b'K' | b'k' => (&v[..v.len() - 1], 10),
        b'M' | b'm' => (&v[..v.len() - 1], 20),
        b'G' | b'g' => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_shl(shift))
}

/// Raw SIGINT/SIGTERM handling (no libc dependency): the first signal
/// sets a flag the campaign monitor polls; a second one exits
/// immediately with the conventional interrupt code.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_signal(_sig: i32) {
        if SHUTDOWN.swap(true, Ordering::Relaxed) {
            // Second signal: the user really means it.
            unsafe { _exit(130) }
        }
    }

    /// Installs the graceful handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }
}

fn cmd_campaign(args: &[String]) {
    use gqed::campaign::{
        chaos_kill_plan, enumerate_obligations, manifest_crc, Campaign, FleetConfig, Journal,
        Telemetry, VerdictStore,
    };

    let designs: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some(
                        "--jobs"
                            | "--deadline-ms"
                            | "--budget"
                            | "--max-attempts"
                            | "--telemetry"
                            | "--flow"
                            | "--journal"
                            | "--resume"
                            | "--mem-limit"
                            | "--summary-out"
                            | "--engines"
                            | "--store"
                            | "--fleet"
                            | "--crash-budget"
                            | "--heartbeat-timeout-ms"
                            | "--chaos-kills"
                            | "--chaos-seed"
                    )
                )
        })
        .map(|(_, a)| a.clone())
        .collect();
    if designs.is_empty() && !has_flag(args, "--all") {
        eprintln!(
            "usage: gqed campaign [<design>…|--all] [--jobs n] [--deadline-ms m] [--budget c]"
        );
        eprintln!("                     [--max-attempts n] [--telemetry file] [--flow gqed,aqed,conv] [--no-race]");
        eprintln!("                     [--engines bmc,kind,pdr] [--journal file] [--resume file]");
        eprintln!(
            "                     [--mem-limit bytes[K|M|G]] [--summary-out file] [--store file]"
        );
        eprintln!(
            "                     [--fleet n] [--crash-budget n] [--heartbeat-timeout-ms m] [--chaos-kills n] [--chaos-seed s]"
        );
        exit(2);
    }
    for name in &designs {
        find_design(name); // validate early with the friendly error
    }

    let flows = parse_flows(args);
    let interrupt = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let config = campaign_config_from_args(args).with_interrupt(std::sync::Arc::clone(&interrupt));
    let store = flag_value(args, "--store").map(|path| {
        VerdictStore::open(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open verdict store {path}: {e}");
            exit(1);
        })
    });
    let telemetry = match flag_value(args, "--telemetry") {
        Some(path) => Telemetry::file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            exit(1);
        }),
        None => Telemetry::null(),
    };

    let obligations = enumerate_obligations(flows, &designs);

    // Process isolation: --fleet n solves on n supervised `gqed worker`
    // child processes; --chaos-kills injects deterministic worker deaths
    // for crash-containment testing.
    let fleet = flag_value(args, "--fleet").map(|v| {
        let workers: usize = v.parse().unwrap_or_else(|_| {
            eprintln!("--fleet expects a worker count, got {v}");
            exit(2);
        });
        let mut f = FleetConfig::default().with_workers(workers);
        if let Some(v) = flag_value(args, "--crash-budget") {
            f = f.with_crash_budget(v.parse().unwrap_or_else(|_| {
                eprintln!("--crash-budget expects a count, got {v}");
                exit(2);
            }));
        }
        if let Some(v) = flag_value(args, "--heartbeat-timeout-ms") {
            f = f.with_heartbeat_timeout_ms(v.parse().unwrap_or_else(|_| {
                eprintln!("--heartbeat-timeout-ms expects milliseconds, got {v}");
                exit(2);
            }));
        }
        if let Some(v) = flag_value(args, "--chaos-kills") {
            let kills: usize = v.parse().unwrap_or_else(|_| {
                eprintln!("--chaos-kills expects a count, got {v}");
                exit(2);
            });
            let seed: u64 = match flag_value(args, "--chaos-seed") {
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("--chaos-seed expects an integer, got {s}");
                    exit(2);
                }),
                None => 1,
            };
            f = f.with_faults(chaos_kill_plan(&obligations, kills, seed));
        }
        f
    });

    // Crash-safe journaling: --resume replays (and truncates) an existing
    // journal and keeps appending to it; --journal starts a fresh one.
    if flag_value(args, "--journal").is_some() && flag_value(args, "--resume").is_some() {
        eprintln!("--journal and --resume are mutually exclusive (resume appends to its journal)");
        exit(2);
    }
    let (journal, resume) = if let Some(path) = flag_value(args, "--resume") {
        let (journal, state) = Journal::resume(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot resume journal {path}: {e}");
            exit(1);
        });
        match state.manifest_crc {
            Some(crc) if crc == manifest_crc(&obligations) => {}
            Some(_) => {
                eprintln!(
                    "journal {path} belongs to a different obligation set (manifest mismatch); \
                     re-run with the original designs/flows"
                );
                exit(2);
            }
            None => {
                eprintln!("journal {path} has no campaign_start record; cannot verify manifest");
                exit(2);
            }
        }
        eprintln!(
            "resuming: {} of {} obligations already settled",
            state.completed.len(),
            obligations.len()
        );
        (Some(journal), Some(state))
    } else if let Some(path) = flag_value(args, "--journal") {
        let journal = Journal::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot create journal {path}: {e}");
            exit(1);
        });
        (Some(journal), None)
    } else {
        (None, None)
    };

    // Graceful shutdown: forward SIGINT/SIGTERM into the campaign's
    // cooperative interrupt flag.
    #[cfg(unix)]
    {
        signals::install();
        let flag = std::sync::Arc::clone(&interrupt);
        std::thread::spawn(move || loop {
            if signals::SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed) {
                eprintln!("interrupt received; checkpointing and shutting down…");
                flag.store(true, std::sync::atomic::Ordering::Relaxed);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    match fleet.as_ref() {
        Some(f) => eprintln!(
            "campaign: {} obligations, {} worker process(es)…",
            obligations.len(),
            f.workers.max(1)
        ),
        None => eprintln!(
            "campaign: {} obligations, {} worker(s)…",
            obligations.len(),
            config.jobs.max(1)
        ),
    }
    let mut campaign = Campaign::new(&obligations).config(config.clone());
    if let Some(j) = journal.as_ref() {
        campaign = campaign.journal(j);
    }
    if let Some(s) = resume.as_ref() {
        campaign = campaign.resume(s);
    }
    if let Some(store) = store.as_ref() {
        campaign = campaign.verdict_store(store);
    }
    if let Some(f) = fleet.clone() {
        campaign = campaign.fleet(f);
    }
    let summary = campaign.run(&telemetry);

    if let Some(path) = flag_value(args, "--summary-out") {
        std::fs::write(path, summary.normalized_render()).unwrap_or_else(|e| {
            eprintln!("cannot write summary file {path}: {e}");
            exit(1);
        });
    }

    println!(
        "{:34} {:8} {:44} {:>3} {:>10}  engine",
        "obligation", "flow", "verdict", "try", "wall"
    );
    for r in &summary.records {
        println!(
            "{:34} {:8} {:44} {:>3} {:>10}  {}{}",
            r.obligation.id,
            r.obligation.flow_tag(),
            format!("{:?}", r.verdict),
            r.attempts,
            format!("{:.1?}", r.wall),
            r.engine,
            if r.mismatch { "  MISMATCH" } else { "" }
        );
    }
    println!(
        "\n{} obligations in {:.2?} on {} worker(s): {} violations, {} passes, {} unknown, {} timeouts, {} failures, {} cancelled, {} poisoned, {} replayed, {} mismatches",
        summary.records.len(),
        summary.wall,
        summary.jobs,
        summary.violations,
        summary.passes,
        summary.unknowns,
        summary.timeouts,
        summary.failures,
        summary.cancelled,
        summary.poisoned,
        summary.replayed,
        summary.mismatches
    );
    println!(
        "engine wins: {} bmc, {} kind, {} pdr",
        summary.wins_bmc, summary.wins_kind, summary.wins_pdr
    );
    if fleet.is_some() {
        println!(
            "fleet: {} worker crash(es), {} restart(s), {} requeue(s)",
            summary.worker_crashes, summary.worker_restarts, summary.requeued
        );
    }
    if store.is_some() {
        println!(
            "verdict store: {} cache hits, {} cache misses",
            summary.cache_hits, summary.cache_misses
        );
    }
    exit(summary.exit_code());
}

fn cmd_mutants(args: &[String]) {
    use gqed::campaign::{
        enumerate_mutant_obligations, manifest_crc, Campaign, EngineId, Journal, MutantsReport,
        Telemetry, VerdictStore, DEFAULT_DETECTION_FLOOR,
    };

    let designs: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some(
                        "--jobs"
                            | "--deadline-ms"
                            | "--budget"
                            | "--max-attempts"
                            | "--telemetry"
                            | "--flow"
                            | "--journal"
                            | "--resume"
                            | "--mem-limit"
                            | "--summary-out"
                            | "--engines"
                            | "--store"
                            | "--seed"
                            | "--per-design"
                            | "--out"
                            | "--floor"
                    )
                )
        })
        .map(|(_, a)| a.clone())
        .collect();
    for name in &designs {
        find_design(name); // validate early with the friendly error
    }

    let seed: u64 = parse_flag(args, "--seed").unwrap_or(1);
    let per_design: usize = parse_flag(args, "--per-design").unwrap_or(10);
    let floor: f64 = parse_flag(args, "--floor").unwrap_or(DEFAULT_DETECTION_FLOOR);
    let out = flag_value(args, "--out").unwrap_or("BENCH_mutants.json");

    let flows = parse_flows(args);
    let interrupt = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut config =
        campaign_config_from_args(args).with_interrupt(std::sync::Arc::clone(&interrupt));
    // Detection-rate tables must be byte-identical across runs and worker
    // counts, so the racing portfolio defaults off; --engines opts back in.
    if flag_value(args, "--engines").is_none() && !has_flag(args, "--no-race") {
        config = config.with_engines(vec![EngineId::Bmc]);
    }
    let store = flag_value(args, "--store").map(|path| {
        VerdictStore::open(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open verdict store {path}: {e}");
            exit(1);
        })
    });
    let telemetry = match flag_value(args, "--telemetry") {
        Some(path) => Telemetry::file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            exit(1);
        }),
        None => Telemetry::null(),
    };

    eprintln!("mutants: synthesizing {per_design} mutant(s) per design with seed {seed}…");
    let batch = enumerate_mutant_obligations(seed, per_design, flows, &designs);
    let obligations = &batch.obligations;
    eprintln!(
        "mutants: {} accepted ({} no-ops and {} duplicates discarded before solving), {} obligations",
        batch.plans.len(),
        batch.discarded_noops,
        batch.discarded_dups,
        obligations.len()
    );

    if flag_value(args, "--journal").is_some() && flag_value(args, "--resume").is_some() {
        eprintln!("--journal and --resume are mutually exclusive (resume appends to its journal)");
        exit(2);
    }
    let (journal, resume) = if let Some(path) = flag_value(args, "--resume") {
        let (journal, state) = Journal::resume(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot resume journal {path}: {e}");
            exit(1);
        });
        match state.manifest_crc {
            Some(crc) if crc == manifest_crc(obligations) => {}
            Some(_) => {
                // Mutant ids embed the seed, so this also rejects a journal
                // from a different --seed or --per-design.
                eprintln!(
                    "journal {path} belongs to a different mutant batch (manifest mismatch); \
                     re-run with the original seed/designs/flows"
                );
                exit(2);
            }
            None => {
                eprintln!("journal {path} has no campaign_start record; cannot verify manifest");
                exit(2);
            }
        }
        eprintln!(
            "resuming: {} of {} obligations already settled",
            state.completed.len(),
            obligations.len()
        );
        (Some(journal), Some(state))
    } else if let Some(path) = flag_value(args, "--journal") {
        let journal = Journal::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot create journal {path}: {e}");
            exit(1);
        });
        (Some(journal), None)
    } else {
        (None, None)
    };

    #[cfg(unix)]
    {
        signals::install();
        let flag = std::sync::Arc::clone(&interrupt);
        std::thread::spawn(move || loop {
            if signals::SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed) {
                eprintln!("interrupt received; checkpointing and shutting down…");
                flag.store(true, std::sync::atomic::Ordering::Relaxed);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    eprintln!(
        "mutants: {} obligations, {} worker(s)…",
        obligations.len(),
        config.jobs.max(1)
    );
    let mut campaign = Campaign::new(obligations).config(config.clone());
    if let Some(j) = journal.as_ref() {
        campaign = campaign.journal(j);
    }
    if let Some(s) = resume.as_ref() {
        campaign = campaign.resume(s);
    }
    if let Some(store) = store.as_ref() {
        campaign = campaign.verdict_store(store);
    }
    let summary = campaign.run(&telemetry);

    if let Some(path) = flag_value(args, "--summary-out") {
        std::fs::write(path, summary.normalized_render()).unwrap_or_else(|e| {
            eprintln!("cannot write summary file {path}: {e}");
            exit(1);
        });
    }

    let report = MutantsReport::from_summary(&batch, &summary, floor);
    print!("{}", report.render_table());
    println!(
        "engine wins: {} bmc, {} kind, {} pdr",
        report.wins_bmc, report.wins_kind, report.wins_pdr
    );
    if store.is_some() {
        println!(
            "verdict store: {} cache hits, {} cache misses",
            summary.cache_hits, summary.cache_misses
        );
    }
    std::fs::write(out, report.to_json().render() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    eprintln!("report: {out}");
    if summary.exit_code() != 0 {
        exit(summary.exit_code());
    }
    if let Some(reason) = report.regression() {
        eprintln!("REGRESSION: {reason}");
        exit(1);
    }
}

fn cmd_serve(args: &[String]) {
    use gqed::campaign::{serve, ServeOptions, Telemetry};

    let interrupt = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let config = campaign_config_from_args(args).with_interrupt(std::sync::Arc::clone(&interrupt));
    let telemetry = match flag_value(args, "--telemetry") {
        Some(path) => Telemetry::file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            exit(1);
        }),
        None => Telemetry::null(),
    };
    let mut opts = ServeOptions {
        config,
        store: flag_value(args, "--store").map(std::path::PathBuf::from),
        telemetry,
        ..ServeOptions::default()
    };
    if let Some(v) = flag_value(args, "--max-request-bytes") {
        opts.max_request_bytes = v.parse().unwrap_or_else(|_| {
            eprintln!("--max-request-bytes expects a byte count, got {v}");
            exit(2);
        });
    }
    if let Some(v) = flag_value(args, "--read-timeout-ms") {
        let ms: u64 = v.parse().unwrap_or_else(|_| {
            eprintln!("--read-timeout-ms expects milliseconds, got {v}");
            exit(2);
        });
        opts.read_timeout = if ms == 0 {
            None
        } else {
            Some(std::time::Duration::from_millis(ms))
        };
    }
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7878");
    let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        exit(1);
    });
    let local = listener
        .local_addr()
        .expect("bound listener has an address");

    // Ctrl-C stops the accept loop between connections.
    #[cfg(unix)]
    {
        signals::install();
        let flag = std::sync::Arc::clone(&interrupt);
        std::thread::spawn(move || loop {
            if signals::SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed) {
                flag.store(true, std::sync::atomic::Ordering::Relaxed);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    println!("gqed serve: listening on {local}");
    match opts.store.as_deref() {
        Some(path) => eprintln!("verdict store: {}", path.display()),
        None => eprintln!("verdict store: in-memory (process lifetime)"),
    }
    match serve(listener, &opts) {
        Ok(summary) => eprintln!(
            "gqed serve: shut down after {} connection(s), {} batch(es), {} connection error(s), {} oversize request(s), {} timeout(s)",
            summary.connections,
            summary.batches,
            summary.connection_errors,
            summary.oversize_requests,
            summary.timeouts
        ),
        Err(e) => {
            eprintln!("serve failed: {e}");
            exit(1);
        }
    }
}

fn cmd_submit(args: &[String]) {
    use gqed::campaign::{
        enumerate_obligations, request_shutdown, submit_batch_with_retry, BatchRequest,
        ObligationSpec, Telemetry,
    };

    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7878");
    if has_flag(args, "--shutdown") {
        if let Err(e) = request_shutdown(addr) {
            eprintln!("shutdown request failed: {e}");
            exit(1);
        }
        eprintln!("server at {addr} acknowledged shutdown");
        return;
    }

    let designs: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(
                    args.get(i.wrapping_sub(1)).map(String::as_str),
                    Some(
                        "--addr"
                            | "--batch"
                            | "--flow"
                            | "--jobs"
                            | "--deadline-ms"
                            | "--budget"
                            | "--max-attempts"
                            | "--engines"
                            | "--telemetry"
                            | "--summary-out"
                            | "--retries"
                            | "--retry-delay-ms"
                    )
                )
        })
        .map(|(_, a)| a.clone())
        .collect();
    if designs.is_empty() && !has_flag(args, "--all") {
        eprintln!("usage: gqed submit [<design>…|--all] [--addr host:port] [--batch label]");
        eprintln!(
            "                   [--flow gqed,aqed,conv] [--jobs n] [--deadline-ms m] [--budget c]"
        );
        eprintln!("                   [--max-attempts n] [--engines bmc,kind,pdr]");
        eprintln!("                   [--telemetry file] [--summary-out file] [--shutdown]");
        eprintln!("                   [--retries n] [--retry-delay-ms m]");
        exit(2);
    }
    for name in &designs {
        find_design(name);
    }

    let obligations = enumerate_obligations(parse_flows(args), &designs);
    let specs: Vec<ObligationSpec> = obligations
        .iter()
        .filter_map(ObligationSpec::from_obligation)
        .collect();
    let request = BatchRequest {
        batch: flag_value(args, "--batch").unwrap_or("batch").to_string(),
        jobs: parse_flag(args, "--jobs"),
        deadline_ms: parse_flag(args, "--deadline-ms"),
        budget: parse_flag(args, "--budget"),
        max_attempts: parse_flag(args, "--max-attempts"),
        engines: flag_value(args, "--engines")
            .map(|list| list.split(',').map(str::to_string).collect()),
        obligations: specs,
    };

    let telemetry = match flag_value(args, "--telemetry") {
        Some(path) => Telemetry::file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            exit(1);
        }),
        None => Telemetry::null(),
    };
    eprintln!(
        "submitting {} obligations to {addr}…",
        request.obligations.len()
    );
    let retries: u32 = parse_flag(args, "--retries").unwrap_or(0);
    let retry_delay =
        std::time::Duration::from_millis(parse_flag(args, "--retry-delay-ms").unwrap_or(200));
    let response = match submit_batch_with_retry(addr, &request, retries, retry_delay, |event| {
        telemetry.emit(event)
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("submit failed: {e}");
            exit(1);
        }
    };
    telemetry.sync();

    if let Some(path) = flag_value(args, "--summary-out") {
        std::fs::write(path, &response.normalized).unwrap_or_else(|e| {
            eprintln!("cannot write summary file {path}: {e}");
            exit(1);
        });
    }
    print!("{}", response.normalized);
    println!(
        "\nbatch '{}': {} obligations in {}ms on {} worker(s): {} violations, {} passes, {} unknown, {} timeouts, {} failures, {} cancelled, {} mismatches",
        response.batch,
        response.obligations,
        response.wall_ms,
        response.jobs,
        response.violations,
        response.passes,
        response.unknowns,
        response.timeouts,
        response.failures,
        response.cancelled,
        response.mismatches
    );
    println!(
        "verdict store: {} cache hits, {} cache misses",
        response.cache_hits, response.cache_misses
    );
    exit(i32::try_from(response.exit_code).unwrap_or(1));
}

fn cmd_bench(args: &[String]) {
    use gqed::campaign::{run_bench, Telemetry};

    let quick = has_flag(args, "--quick");
    let out = flag_value(args, "--out").unwrap_or("BENCH_pipeline.json");
    let telemetry = match flag_value(args, "--telemetry") {
        Some(path) => Telemetry::file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            exit(1);
        }),
        None => Telemetry::null(),
    };
    eprintln!(
        "bench: {} suite, cold then warm…",
        if quick { "quick" } else { "full" }
    );
    let report = run_bench(quick, &telemetry);
    std::fs::write(out, report.to_json().render() + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    for run in [&report.cold, &report.warm] {
        println!(
            "{:4}  {:>8.2?}  {:>6} frames  {:>8.1} frames/s  {:>8} conflicts  {:>9} peak arena B  {} resumes",
            run.mode,
            run.wall,
            run.frames_solved,
            run.frames_per_sec(),
            run.conflicts,
            run.peak_arena_bytes,
            run.session_resumes
        );
    }
    println!(
        "frames saved warm vs cold: {} ({} obligations); report: {out}",
        report
            .cold
            .frames_solved
            .saturating_sub(report.warm.frames_solved),
        report.obligations
    );
    let sp = &report.simplify;
    println!(
        "simplify probe: {} vs {} frames ({} vs {} conflicts) inprocessing on/off; \
         {} rounds, {} vars eliminated, {} subsumed, {} strengthened, {} vivified",
        sp.frames_on,
        sp.frames_off,
        sp.conflicts_on,
        sp.conflicts_off,
        sp.simplify_rounds,
        sp.eliminated_vars,
        sp.subsumed_clauses,
        sp.strengthened_clauses,
        sp.vivified_clauses
    );
    if let Some(reason) = report.regression() {
        eprintln!("REGRESSION: {reason}");
        exit(1);
    }
}

fn cmd_productivity(args: &[String]) {
    let features: u32 = flag_value(args, "--features")
        .map(|v| v.parse().expect("bad --features"))
        .unwrap_or(120);
    let properties: u32 = flag_value(args, "--properties")
        .map(|v| v.parse().expect("bad --properties"))
        .unwrap_or(160);
    let cs = CaseStudy {
        features,
        properties,
    };
    let c = ConventionalCosts::default();
    let g = GqedCosts::default();
    println!(
        "conventional: {:.0} person-days; G-QED: {:.0} person-days; gain {:.1}x",
        conventional_person_days(&cs, &c),
        gqed_person_days(&cs, &g),
        productivity_gain(&cs, &c, &g)
    );
}
