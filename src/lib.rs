//! **gqed** — a from-scratch reproduction of *G-QED: Generalized QED
//! Pre-silicon Verification beyond Non-Interfering Hardware Accelerators*
//! (Chattopadhyay et al., DAC 2023).
//!
//! G-QED verifies hardware accelerators by *self-consistency*: instead of
//! design-specific properties or a functional specification, it checks
//! universal properties every transactional accelerator must satisfy —
//! and, unlike its predecessor A-QED, it remains sound and effective on
//! **interfering** accelerators, whose responses depend on earlier
//! transactions.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`campaign`] | `gqed-campaign` | parallel verification campaign runner + JSONL telemetry |
//! | [`core`] | `gqed-core` | G-QED/A-QED wrapper synthesis, check flows, productivity model, theory |
//! | [`ha`] | `gqed-ha` | the accelerator design library + bug catalogues |
//! | [`bmc`] | `gqed-bmc` | the bounded model checker + k-induction + replay |
//! | [`pdr`] | `gqed-pdr` | the IC3/PDR unbounded proof engine |
//! | [`ir`] | `gqed-ir` | word-level IR, simulator, bit-blaster, VCD |
//! | [`sat`] | `gqed-sat` | the CDCL SAT solver |
//! | [`logic`] | `gqed-logic` | AIG, CNF, Tseitin |
//!
//! # Quickstart
//!
//! ```
//! use gqed::core::{check_design, CheckKind};
//! use gqed::ha::designs::accum;
//!
//! // Build an interfering accumulator with an injected state-leak bug…
//! let design = accum::build(&accum::Params::default(), Some("carry-leak"));
//! // …and let G-QED find it with no design-specific properties at all.
//! let outcome = check_design(&design, CheckKind::GQed, 16);
//! assert!(outcome.verdict.is_violation());
//! println!(
//!     "found '{}' in {} cycles",
//!     design.injected_bug.unwrap(),
//!     outcome.trace.unwrap().len()
//! );
//! ```
//!
//! See `examples/` for complete walkthroughs (the A-QED false-alarm demo,
//! the industrial case study, a catalogue-wide bug hunt) and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![warn(missing_docs)]
pub use gqed_bmc as bmc;
pub use gqed_campaign as campaign;
pub use gqed_core as core;
pub use gqed_ha as ha;
pub use gqed_ir as ir;
pub use gqed_logic as logic;
pub use gqed_pdr as pdr;
pub use gqed_sat as sat;

/// Convenience re-exports of the types most applications need.
pub mod prelude {
    pub use gqed_bmc::{prove_equivalent, prove_k_induction, BmcEngine, BmcResult, Trace};
    pub use gqed_core::{check_design, synthesize, CheckKind, CheckOutcome, QedConfig, Verdict};
    pub use gqed_ha::{all_designs, Design, DesignEntry, Driver};
    pub use gqed_ir::{to_btor2, unrolling_to_smt2, Context, Sim, TransitionSystem};
}
